"""The asyncio TCP serving front end over the query scheduler.

:class:`QueryServer` makes the engine reachable from other processes: it
accepts connections on a TCP socket, speaks the length-prefixed frame
protocol of :mod:`repro.server.protocol`, and maps every connection onto
one engine :class:`~repro.scheduler.Session` with its own prepared-
statement registry.  The event loop runs on a single dedicated thread
(started lazily by :meth:`start`), so a database that never serves never
pays for it.

Execution requests flow through ``Database.submit`` with ``block=False``:
the scheduler's ``max_concurrent`` / ``max_pending`` admission control
therefore becomes *wire-level backpressure* -- a full admission queue
answers with an explicit ``ERROR(BUSY)`` frame carrying a retry-after
hint, instead of queueing unboundedly inside the server.  Completion is
bridged from the scheduler's worker threads into the event loop via
:meth:`QueryTicket.add_done_callback` + ``loop.call_soon_threadsafe`` --
no thread ever blocks inside the server waiting for a query.

Results stream to the client in bounded ``ROW_BATCH`` frames with a
``drain()`` between batches, so one slow reader neither buffers its whole
result set in server memory nor stalls the event loop for other
connections.  ``CANCEL`` frames resolve to ``QueryTicket.cancel``; a
client disconnect mid-request cancels the connection's outstanding
tickets, releasing their admission slots.

Shutdown (:meth:`close`, also run by ``Database.close``) is graceful:
stop accepting, let in-flight requests finish within a drain deadline,
then cancel whatever remains and join the loop thread.
"""

from __future__ import annotations

import asyncio
import itertools
import threading
import time
from typing import Optional

from ..errors import (AdmissionError, ProtocolError, QueryCancelledError,
                      ReproError, SchedulerError, SQLError)
from . import protocol
from .protocol import (CONNECTION_REQUEST_ID, FRAME_HEADER_BYTES,
                       PROTOCOL_VERSION, decode_header, decode_payload,
                       encode_frame)

#: Default number of result rows per ROW_BATCH frame.
DEFAULT_BATCH_ROWS = 1024
#: Upper bound a client may request per batch (keeps frames well under
#: ``MAX_FRAME_BYTES`` for ordinary row widths).
MAX_BATCH_ROWS = 65536
#: Prepared statements one connection may hold open.
MAX_STATEMENTS_PER_CONNECTION = 1024
#: Default seconds :meth:`QueryServer.close` waits for in-flight requests.
DEFAULT_DRAIN_TIMEOUT = 10.0


def error_code_for(exc: BaseException) -> str:
    """Map an engine exception onto a wire error code (most specific wins)."""
    if isinstance(exc, AdmissionError):
        return "BUSY"
    if isinstance(exc, QueryCancelledError):
        return "CANCELLED"
    if isinstance(exc, ProtocolError):
        return "PROTOCOL"
    if isinstance(exc, SQLError):
        return "SQL"
    if isinstance(exc, SchedulerError):
        return "UNAVAILABLE"
    if isinstance(exc, ReproError):
        return "EXECUTION"
    return "INTERNAL"


class _Inflight:
    """One in-flight EXECUTE on a connection: its task and (later) ticket."""

    __slots__ = ("task", "ticket")

    def __init__(self, task):
        self.task = task
        self.ticket = None


class _Connection:
    """Server-side state machine of one client connection."""

    def __init__(self, server: "QueryServer", reader: asyncio.StreamReader,
                 writer: asyncio.StreamWriter, conn_id: int):
        self._server = server
        self._reader = reader
        self._writer = writer
        self.conn_id = conn_id
        self._write_lock = asyncio.Lock()
        self._session = None
        #: request_id -> _Inflight for EXECUTE requests.
        self._inflight: dict[int, _Inflight] = {}
        #: statement_id -> (sql, Prepared metadata frame) registry.
        self._statements: dict[int, str] = {}
        self._statement_seq = itertools.count(1)
        self._closing = False
        self._task: Optional[asyncio.Task] = None

    # ------------------------------------------------------------------ #
    # framed I/O
    # ------------------------------------------------------------------ #
    async def _read_message(self):
        header = await self._reader.readexactly(FRAME_HEADER_BYTES)
        length, frame_type = decode_header(header)
        payload = await self._reader.readexactly(length) if length else b""
        self._server._m_bytes_received.inc(FRAME_HEADER_BYTES + length)
        return decode_payload(frame_type, payload)

    async def _send(self, message) -> None:
        data = encode_frame(message)
        async with self._write_lock:
            self._writer.write(data)
            await self._writer.drain()
        self._server._m_bytes_sent.inc(len(data))

    async def _send_error(self, request_id: int, exc: BaseException,
                          retry_after_ms: int = 0) -> None:
        await self._send(protocol.Error(
            request_id=request_id, code=error_code_for(exc),
            message=str(exc), retry_after_ms=retry_after_ms))

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    async def run(self) -> None:
        self._task = asyncio.current_task()
        try:
            if not await self._handshake():
                return
            await self._serve_requests()
        except (asyncio.IncompleteReadError, ConnectionError, OSError):
            pass  # peer went away; cleanup below releases its resources
        except ProtocolError as exc:
            self._server._m_protocol_errors.inc()
            await self._try_send_error(CONNECTION_REQUEST_ID, exc)
        except asyncio.CancelledError:
            raise
        finally:
            await self._cleanup()

    async def _try_send_error(self, request_id: int,
                              exc: BaseException) -> None:
        try:
            await self._send_error(request_id, exc)
        except (ConnectionError, OSError):
            pass

    async def _handshake(self) -> bool:
        message = await self._read_message()
        if not isinstance(message, protocol.Hello):
            self._server._m_protocol_errors.inc()
            await self._try_send_error(CONNECTION_REQUEST_ID, ProtocolError(
                f"expected HELLO as the first frame, got "
                f"{type(message).__name__.upper()}"))
            return False
        self._server._request_counter("hello").inc()
        if message.protocol_version != PROTOCOL_VERSION:
            await self._try_send_error(CONNECTION_REQUEST_ID, ProtocolError(
                f"protocol version {message.protocol_version} is not "
                f"supported (server speaks {PROTOCOL_VERSION})"))
            return False
        token = self._server._auth_token
        if token is not None and message.token != token:
            self._server._m_auth_failures.inc()
            await self._send(protocol.Error(
                request_id=CONNECTION_REQUEST_ID, code="AUTH",
                message="authentication failed: bad token"))
            return False
        name = message.session_name or f"wire-{self.conn_id}"
        try:
            self._session = self._server._database.session(name=name)
        except ReproError as exc:  # database closed underneath us
            await self._try_send_error(CONNECTION_REQUEST_ID, exc)
            return False
        await self._send(protocol.Welcome(
            session_name=name,
            server_version=self._server.server_version))
        return True

    async def _serve_requests(self) -> None:
        while True:
            message = await self._read_message()
            if isinstance(message, protocol.Goodbye):
                self._server._request_counter("goodbye").inc()
                await self._send(protocol.Goodbye())
                return
            if isinstance(message, protocol.Execute):
                self._server._request_counter("execute").inc()
                self._start_execute(message)
            elif isinstance(message, protocol.ExecuteMany):
                self._server._request_counter("execute_many").inc()
                self._start_execute(message, batch=True)
            elif isinstance(message, protocol.Prepare):
                self._server._request_counter("prepare").inc()
                await self._handle_prepare(message)
            elif isinstance(message, protocol.Cancel):
                self._server._request_counter("cancel").inc()
                await self._handle_cancel(message)
            elif isinstance(message, protocol.CloseStatement):
                self._server._request_counter("close_statement").inc()
                self._statements.pop(message.statement_id, None)
                await self._send(protocol.Ok(request_id=message.request_id))
            else:
                raise ProtocolError(
                    f"unexpected frame {type(message).__name__.upper()} "
                    f"from a client")

    async def _cleanup(self) -> None:
        self._closing = True
        # Cancel outstanding work *before* tearing the socket down: pending
        # tickets leave the admission queue (their slots free up for other
        # connections), and the streaming tasks stop writing.
        for inflight in list(self._inflight.values()):
            if inflight.ticket is not None:
                inflight.ticket.cancel()
            if inflight.task is not asyncio.current_task():
                inflight.task.cancel()
        if self._session is not None:
            self._session.close()
        try:
            self._writer.close()
            await self._writer.wait_closed()
        except (ConnectionError, OSError, asyncio.CancelledError):
            # CancelledError: the drain phase cancelled this task while it
            # was already waiting for its own transport to finish closing;
            # the close is underway, so finishing normally is correct.
            pass

    # ------------------------------------------------------------------ #
    # PREPARE / CANCEL
    # ------------------------------------------------------------------ #
    async def _handle_prepare(self, message: protocol.Prepare) -> None:
        if len(self._statements) >= MAX_STATEMENTS_PER_CONNECTION:
            await self._send_error(message.request_id, ProtocolError(
                f"too many prepared statements on one connection "
                f"(limit {MAX_STATEMENTS_PER_CONNECTION})"))
            return
        try:
            # Through the shared plan cache: concurrent sessions preparing
            # the same shape land on one PreparedQuery entry.
            prepared = self._server._database.prepare_query(message.sql)
        except ReproError as exc:
            await self._send_error(message.request_id, exc)
            return
        statement_id = next(self._statement_seq)
        self._statements[statement_id] = message.sql
        output_columns = prepared.planning.physical.output_columns
        await self._send(protocol.Prepared(
            request_id=message.request_id,
            statement_id=statement_id,
            parameters=[(spec.name or "", spec.sql_type.value)
                        for spec in prepared.parameters],
            column_names=[name for name, _ in output_columns],
            column_types=[sql_type.value for _, sql_type in output_columns]))

    async def _handle_cancel(self, message: protocol.Cancel) -> None:
        inflight = self._inflight.get(message.target_request_id)
        cancelled = (inflight is not None and inflight.ticket is not None
                     and inflight.ticket.cancel())
        await self._send(protocol.CancelResult(
            request_id=message.request_id, cancelled=cancelled))

    # ------------------------------------------------------------------ #
    # EXECUTE
    # ------------------------------------------------------------------ #
    def _start_execute(self, message, batch: bool = False) -> None:
        """Spawn the per-request task so the read loop keeps serving
        (CANCEL frames must be processable while a query runs)."""
        request_id = message.request_id
        if request_id in self._inflight:
            asyncio.ensure_future(self._try_send_error(
                request_id, ProtocolError(
                    f"request id {request_id} is already in flight")))
            return
        runner = (self._run_execute_many if batch else self._run_execute)
        task = asyncio.get_running_loop().create_task(runner(message))
        self._inflight[request_id] = _Inflight(task)
        task.add_done_callback(
            lambda _t: self._inflight.pop(request_id, None))

    async def _run_execute(self, message: protocol.Execute) -> None:
        server = self._server
        started = time.perf_counter()
        server._m_in_flight.inc()
        try:
            await self._execute_and_stream(message)
        except (ConnectionError, OSError):
            pass  # peer gone; the read loop's cleanup handles the rest
        finally:
            server._m_in_flight.dec()
            server._m_request_seconds.observe(time.perf_counter() - started)

    def _probe_result_cache(self, sql: str, params, options):
        """Engine result-cache probe for one binding; None on any miss.

        Runs on the loop thread, but the probe is lock-free and does not
        execute anything -- a hit returns a finished ``QueryResult``
        without consuming a scheduler admission slot.
        """
        try:
            return self._server._database.cached_result(
                sql, params=params, options=options)
        except ReproError:
            return None

    async def _execute_and_stream(self, message: protocol.Execute) -> None:
        server = self._server
        if self._closing:
            await self._try_send_error(message.request_id, SchedulerError(
                "server is shutting down"))
            return
        try:
            sql = self._resolve_sql(message)
            options = self._session.options.merged(**message.options)
            cached = self._probe_result_cache(sql, message.params, options)
            if cached is not None:
                server._m_result_cache_serves.inc()
                self._session._record_submitted()
                self._session._record_result(cached)
                await self._stream_result(message, cached)
                return
            ticket = server._database.submit(
                sql, options=options, params=message.params,
                session=self._session, block=False)
        except AdmissionError as exc:
            server._m_busy_rejections.inc()
            await self._send(protocol.Error(
                request_id=message.request_id, code="BUSY",
                message=str(exc),
                retry_after_ms=server._retry_after_ms()))
            return
        except Exception as exc:
            await self._send_error(message.request_id, exc)
            return

        inflight = self._inflight.get(message.request_id)
        if inflight is not None:
            inflight.ticket = ticket

        # Bridge ticket completion (fires on a scheduler worker thread)
        # into this event loop without blocking anything.
        loop = asyncio.get_running_loop()
        future = loop.create_future()

        def _resolve_future() -> None:
            if not future.done():
                future.set_result(None)

        def _on_ticket_done(_ticket) -> None:
            try:
                loop.call_soon_threadsafe(_resolve_future)
            except RuntimeError:  # loop already closed mid-shutdown
                pass

        ticket.add_done_callback(_on_ticket_done)
        try:
            await future
        except asyncio.CancelledError:
            ticket.cancel()
            raise
        try:
            result = ticket.result(timeout=0)
        except Exception as exc:
            await self._send_error(message.request_id, exc)
            return

        await self._stream_result(message, result)

    def _batch_rows_for(self, message) -> int:
        batch_rows = message.batch_rows or self._server.batch_rows
        return max(1, min(int(batch_rows), MAX_BATCH_ROWS))

    async def _send_row_header(self, request_id: int, result) -> None:
        await self._send(protocol.RowHeader(
            request_id=request_id,
            column_names=result.column_names,
            column_types=[sql_type.value
                          for sql_type in result.column_types]))

    async def _send_row_batches(self, request_id: int, rows,
                                batch_rows: int) -> None:
        for begin in range(0, len(rows), batch_rows):
            # drain() between batches bounds server-side buffering: a slow
            # client applies backpressure here instead of ballooning the
            # transport buffer.
            await self._send(protocol.RowBatch(
                request_id=request_id,
                rows=rows[begin:begin + batch_rows]))

    async def _stream_result(self, message: protocol.Execute,
                             result) -> None:
        batch_rows = self._batch_rows_for(message)
        await self._send_row_header(message.request_id, result)
        await self._send_row_batches(message.request_id, result.rows,
                                     batch_rows)
        await self._send(protocol.Done(
            request_id=message.request_id,
            row_count=len(result.rows),
            mode=result.mode,
            cached=result.cached,
            total_seconds=result.timings.total,
            queue_seconds=result.timings.queue))

    # ------------------------------------------------------------------ #
    # EXECUTE_MANY
    # ------------------------------------------------------------------ #
    async def _run_execute_many(self,
                                message: protocol.ExecuteMany) -> None:
        server = self._server
        started = time.perf_counter()
        server._m_in_flight.inc()
        try:
            await self._execute_many_and_stream(message)
        except (ConnectionError, OSError):
            pass  # peer gone; the read loop's cleanup handles the rest
        finally:
            server._m_in_flight.dec()
            server._m_request_seconds.observe(time.perf_counter() - started)

    async def _execute_many_and_stream(
            self, message: protocol.ExecuteMany) -> None:
        server = self._server
        if self._closing:
            await self._try_send_error(message.request_id, SchedulerError(
                "server is shutting down"))
            return
        try:
            sql = self._resolve_sql(message)
            if not message.bindings:
                raise ProtocolError("EXECUTE_MANY carries no bindings")
            options = self._session.options.merged(**message.options)
            # Admission-free fast path: when *every* binding of the batch
            # is answerable from the engine's result cache, serve the whole
            # request on the loop thread without touching the scheduler.
            results = []
            for binding in message.bindings:
                cached = self._probe_result_cache(sql, binding, options)
                if cached is None:
                    results = None
                    break
                results.append(cached)
            if results is not None:
                server._m_result_cache_serves.inc()
                for result in results:
                    self._session._record_submitted()
                    self._session._record_result(result)
                await self._stream_batch(message, results)
                return
            ticket = server._database.submit_many(
                sql, message.bindings, options=options,
                session=self._session, block=False)
        except AdmissionError as exc:
            server._m_busy_rejections.inc()
            await self._send(protocol.Error(
                request_id=message.request_id, code="BUSY",
                message=str(exc),
                retry_after_ms=server._retry_after_ms()))
            return
        except Exception as exc:
            await self._send_error(message.request_id, exc)
            return

        inflight = self._inflight.get(message.request_id)
        if inflight is not None:
            inflight.ticket = ticket

        loop = asyncio.get_running_loop()
        future = loop.create_future()

        def _resolve_future() -> None:
            if not future.done():
                future.set_result(None)

        def _on_ticket_done(_ticket) -> None:
            try:
                loop.call_soon_threadsafe(_resolve_future)
            except RuntimeError:  # loop already closed mid-shutdown
                pass

        ticket.add_done_callback(_on_ticket_done)
        try:
            await future
        except asyncio.CancelledError:
            ticket.cancel()
            raise
        try:
            results = ticket.result(timeout=0)
        except Exception as exc:
            await self._send_error(message.request_id, exc)
            return
        await self._stream_batch(message, results)

    async def _stream_batch(self, message: protocol.ExecuteMany,
                            results) -> None:
        """ROW_HEADER (ROW_BATCH* BATCH_DONE) per binding, then DONE."""
        batch_rows = self._batch_rows_for(message)
        request_id = message.request_id
        await self._send_row_header(request_id, results[0])
        total_rows = 0
        total_seconds = 0.0
        for index, result in enumerate(results):
            await self._send_row_batches(request_id, result.rows,
                                         batch_rows)
            await self._send(protocol.BatchDone(
                request_id=request_id,
                binding_index=index,
                row_count=len(result.rows),
                cached=result.cached,
                cache_source=result.cache_source or ""))
            total_rows += len(result.rows)
            total_seconds += result.timings.total
        await self._send(protocol.Done(
            request_id=request_id,
            row_count=total_rows,
            mode=results[0].mode,
            cached=all(result.cached for result in results),
            total_seconds=total_seconds,
            queue_seconds=results[0].timings.queue))

    def _resolve_sql(self, message: protocol.Execute) -> str:
        if message.statement_id:
            sql = self._statements.get(message.statement_id)
            if sql is None:
                raise ProtocolError(
                    f"unknown statement id {message.statement_id}")
            return sql
        if not message.sql:
            raise ProtocolError("EXECUTE carries neither SQL nor a "
                                "statement id")
        return message.sql


class QueryServer:
    """Asyncio TCP front end of one :class:`repro.Database`.

    ``port=0`` binds an ephemeral port (read it back from
    :attr:`address`).  ``auth_token=None`` accepts any HELLO; a non-None
    token must match exactly.  The server registers its instruments in the
    database's :class:`~repro.telemetry.MetricsRegistry` under the
    ``server.*`` namespace.
    """

    def __init__(self, database, host: str = "127.0.0.1", port: int = 0,
                 auth_token: Optional[str] = None,
                 batch_rows: int = DEFAULT_BATCH_ROWS,
                 drain_timeout: float = DEFAULT_DRAIN_TIMEOUT,
                 name: str = "repro-server"):
        self._database = database
        self._host = host
        self._port = int(port)
        self._auth_token = auth_token
        self.batch_rows = max(1, min(int(batch_rows), MAX_BATCH_ROWS))
        self._drain_timeout = float(drain_timeout)
        self.name = name

        self._lock = threading.Lock()
        self._thread: Optional[threading.Thread] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._stop_event: Optional[asyncio.Event] = None
        self._started = threading.Event()
        self._startup_error: Optional[BaseException] = None
        self._address: Optional[tuple] = None
        self._closed = False
        self._connections: set[_Connection] = set()
        self._conn_seq = itertools.count(1)

        metrics = database.metrics
        self._metrics = metrics
        self._m_connections_total = metrics.counter(
            "server.connections_total", "TCP connections accepted")
        self._m_active = metrics.gauge(
            "server.active_connections", "Currently open connections")
        self._m_in_flight = metrics.gauge(
            "server.in_flight_requests", "EXECUTE requests being served")
        self._m_request_seconds = metrics.histogram(
            "server.request_seconds",
            "Wire-level seconds from EXECUTE receipt to terminal frame")
        self._m_bytes_sent = metrics.counter(
            "server.bytes_sent", "Frame bytes written to clients")
        self._m_bytes_received = metrics.counter(
            "server.bytes_received", "Frame bytes read from clients")
        self._m_busy_rejections = metrics.counter(
            "server.busy_rejections",
            "EXECUTE requests rejected by admission control (BUSY)")
        self._m_result_cache_serves = metrics.counter(
            "server.result_cache_serves",
            "Requests answered from the result cache without a "
            "scheduler admission slot")
        self._m_auth_failures = metrics.counter(
            "server.auth_failures", "Connections rejected at HELLO")
        self._m_protocol_errors = metrics.counter(
            "server.protocol_errors", "Frame/state-machine violations")

    @property
    def server_version(self) -> str:
        from .. import __version__
        return __version__

    def _request_counter(self, kind: str):
        return self._metrics.counter(
            f"server.requests_total.{kind}",
            f"{kind.upper()} requests received")

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    def start(self) -> "QueryServer":
        """Start the event-loop thread; returns once the socket listens."""
        with self._lock:
            if self._closed:
                raise SchedulerError("server is closed")
            if self._thread is not None:
                raise SchedulerError("server is already started")
            self._thread = threading.Thread(
                target=self._run, name=self.name, daemon=True)
            self._thread.start()
        self._started.wait()
        if self._startup_error is not None:
            self.close()
            raise self._startup_error
        return self

    @property
    def address(self) -> tuple:
        """``(host, port)`` the server is listening on."""
        if self._address is None:
            raise SchedulerError("server is not started")
        return self._address[:2]

    @property
    def port(self) -> int:
        return self.address[1]

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def active_connections(self) -> int:
        return self._m_active.value

    def _retry_after_ms(self) -> int:
        """Retry-after hint attached to BUSY frames.

        Scales the observed mean query latency by the admission-queue
        depth, so clients back off harder when the server is deeper under
        water.  Clamped to [10 ms, 5 s]; defaults to 50 ms when no
        latency data exists yet.
        """
        try:
            pending = self._database.scheduler.pending_count
            histogram = self._database.metrics.get("scheduler.ticket_seconds")
            mean_seconds = 0.0
            if histogram is not None and histogram.count:
                mean_seconds = histogram.sum / histogram.count
            if mean_seconds <= 0.0:
                return 50
            hint = mean_seconds * 1000.0 * (pending + 1)
            return int(min(max(hint, 10.0), 5000.0))
        except Exception:  # pragma: no cover - defensive
            return 50

    def _run(self) -> None:
        loop = asyncio.new_event_loop()
        self._loop = loop
        try:
            loop.run_until_complete(self._main())
        except BaseException as exc:  # pragma: no cover - defensive
            if self._startup_error is None:
                self._startup_error = exc
        finally:
            try:
                loop.run_until_complete(loop.shutdown_asyncgens())
            except Exception:  # pragma: no cover - defensive
                pass
            loop.close()
            self._started.set()  # unblock start() on any startup failure

    async def _main(self) -> None:
        self._stop_event = asyncio.Event()
        try:
            listener = await asyncio.start_server(
                self._handle_connection, self._host, self._port)
        except OSError as exc:
            self._startup_error = exc
            self._started.set()
            return
        try:
            self._address = listener.sockets[0].getsockname()
            self._started.set()
            await self._stop_event.wait()
        finally:
            listener.close()
            await listener.wait_closed()
        await self._drain_connections()

    async def _drain_connections(self) -> None:
        """Graceful shutdown: let in-flight requests finish, then cut."""
        deadline = time.monotonic() + self._drain_timeout
        connections = list(self._connections)
        for conn in connections:
            conn._closing = True
        while time.monotonic() < deadline:
            if not any(conn._inflight for conn in connections):
                break
            await asyncio.sleep(0.01)
        for conn in connections:
            for inflight in list(conn._inflight.values()):
                if inflight.ticket is not None:
                    inflight.ticket.cancel()
                inflight.task.cancel()
            if conn._task is not None:
                conn._task.cancel()
        tasks = [conn._task for conn in connections
                 if conn._task is not None]
        if tasks:
            await asyncio.gather(*tasks, return_exceptions=True)

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        conn = _Connection(self, reader, writer, next(self._conn_seq))
        self._connections.add(conn)
        self._m_connections_total.inc()
        self._m_active.inc()
        try:
            await conn.run()
        except asyncio.CancelledError:
            # Cancellation only ever comes from our own drain path, which
            # has already released the connection's resources.  Swallow it
            # so the task finishes normally: asyncio.streams attaches a
            # done-callback that calls task.exception(), which logs a
            # spurious "Exception in callback" if the task ends cancelled.
            pass
        finally:
            self._connections.discard(conn)
            self._m_active.dec()

    def close(self, timeout: Optional[float] = None) -> None:
        """Gracefully shut the server down; idempotent, thread-safe.

        ``timeout`` overrides the configured drain deadline for in-flight
        requests; after it passes, remaining requests are cancelled and
        connections closed.  The event-loop thread is joined before
        returning.
        """
        with self._lock:
            if self._closed:
                thread = self._thread
                if thread is not None and thread is not \
                        threading.current_thread():
                    thread.join(self._drain_timeout + 10.0)
                return
            self._closed = True
            thread = self._thread
        if thread is None:
            return
        if timeout is not None:
            self._drain_timeout = max(float(timeout), 0.0)
        self._started.wait()
        loop = self._loop
        if loop is not None and self._startup_error is None:
            try:
                loop.call_soon_threadsafe(self._stop_event.set)
            except RuntimeError:  # loop already gone
                pass
        thread.join(self._drain_timeout + 10.0)
        self._database._unregister_server(self)

    def __enter__(self) -> "QueryServer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "closed" if self._closed else (
            f"listening on {self._address[:2]}" if self._address
            else "not started")
        return f"<QueryServer {state}>"
