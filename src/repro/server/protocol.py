"""The wire protocol of the network serving front end.

A connection carries a stream of *frames*, each a 5-byte header followed by
the payload::

    +--------------------+-----------------+----------------------+
    | payload length u32 | frame type u8   | payload (length B)   |
    +--------------------+-----------------+----------------------+

All integers are big-endian.  The payload length excludes the header and is
bounded by :data:`MAX_FRAME_BYTES`; a peer announcing a larger frame is
violating the protocol and the connection is closed (nothing is buffered
for it).  Every message class below owns its payload layout through
``pack_payload`` / ``unpack``; :func:`encode_frame` and
:func:`decode_payload` are the only entry points the endpoints use, so the
codec is symmetric by construction and testable without sockets.

The conversation (see DESIGN.md, "Network serving"):

* ``HELLO -> WELCOME | ERROR(AUTH)`` -- the mandatory handshake; maps the
  connection onto one engine :class:`~repro.scheduler.Session`.
* ``PREPARE -> PREPARED | ERROR`` -- parse/bind/plan once through the
  shared plan cache; returns a statement id plus typed parameter and
  result-column metadata.
* ``EXECUTE -> ROW_HEADER ROW_BATCH* DONE | ERROR`` -- run a statement
  (raw SQL or a prepared id) through ``Database.submit``.  Results stream
  in bounded batches; an ``ERROR`` with code ``BUSY`` carries the
  admission-control backpressure signal and a retry-after hint.
* ``EXECUTE_MANY -> ROW_HEADER (ROW_BATCH* BATCH_DONE)xN DONE | ERROR`` --
  run one statement for a whole batch of bindings in a single request.
  Row batches of the N bindings stream in binding order; each binding is
  terminated by a ``BATCH_DONE`` carrying its index, row count and cache
  disposition, and the final ``DONE`` totals the batch.  Fully cached
  batches are answered straight from the engine's result cache without
  consuming a scheduler admission slot.
* ``CANCEL -> CANCEL_RESULT`` -- resolve to ``QueryTicket.cancel`` of the
  target request (its own ``EXECUTE`` then answers with
  ``ERROR(CANCELLED)`` if the cancel won the race).
* ``CLOSE_STATEMENT -> OK``, ``GOODBYE -> GOODBYE (echo)``.

Frames of concurrent requests may interleave on one connection; the
``request_id`` chosen by the client routes every response.  Request id 0 is
reserved for connection-level errors (handshake and framing violations).

Row values travel self-describing (a one-byte tag per value), in the
engine's *internal* representation: DATE/BOOL/DECIMAL columns are tagged
integers exactly as ``QueryResult.rows`` holds them, and the typed column
metadata in ``ROW_HEADER`` lets the client decode them to Python objects on
demand -- the wire never re-encodes what the engine already normalised.
"""

from __future__ import annotations

import datetime as _dt
import struct
from dataclasses import dataclass, field

from ..errors import ProtocolError
from ..types import SQLType

#: Protocol revision; bumped on incompatible frame-layout changes.
PROTOCOL_VERSION = 1

#: Hard bound on one frame's payload (header excluded).  Large result sets
#: are streamed as many ROW_BATCH frames, so no legitimate frame
#: approaches this; a declared length beyond it is a protocol violation.
MAX_FRAME_BYTES = 16 * 1024 * 1024

#: ``(payload length, frame type)``.
FRAME_HEADER = struct.Struct("!IB")
FRAME_HEADER_BYTES = FRAME_HEADER.size

_U8 = struct.Struct("!B")
_U32 = struct.Struct("!I")
_U64 = struct.Struct("!Q")
_I64 = struct.Struct("!q")
_F64 = struct.Struct("!d")

# ---------------------------------------------------------------------- #
# frame types
# ---------------------------------------------------------------------- #
HELLO = 0x01
PREPARE = 0x02
EXECUTE = 0x03
CANCEL = 0x04
CLOSE_STATEMENT = 0x05
GOODBYE = 0x06
EXECUTE_MANY = 0x07

WELCOME = 0x81
PREPARED = 0x82
ROW_HEADER = 0x83
ROW_BATCH = 0x84
DONE = 0x85
ERROR = 0x86
CANCEL_RESULT = 0x87
OK = 0x88
BATCH_DONE = 0x89

#: Tagged-value encodings (parameters, option values, row values).
_VAL_INT = 0
_VAL_FLOAT = 1
_VAL_STR = 2
_VAL_BOOL = 3
_VAL_DATE = 4

#: ``request_id`` reserved for connection-level (unrouted) errors.
CONNECTION_REQUEST_ID = 0


# ---------------------------------------------------------------------- #
# primitive writer / reader
# ---------------------------------------------------------------------- #
class PayloadWriter:
    """Appends protocol primitives to a growing byte buffer."""

    __slots__ = ("_parts",)

    def __init__(self):
        self._parts: list[bytes] = []

    def u8(self, value: int) -> None:
        self._parts.append(_U8.pack(value))

    def u32(self, value: int) -> None:
        self._parts.append(_U32.pack(value))

    def u64(self, value: int) -> None:
        self._parts.append(_U64.pack(value))

    def i64(self, value: int) -> None:
        self._parts.append(_I64.pack(value))

    def f64(self, value: float) -> None:
        self._parts.append(_F64.pack(value))

    def string(self, value: str) -> None:
        raw = value.encode("utf-8")
        self._parts.append(_U32.pack(len(raw)))
        self._parts.append(raw)

    def value(self, value) -> None:
        """One tagged value (bool before int: bool is an int subclass)."""
        if isinstance(value, bool):
            self.u8(_VAL_BOOL)
            self.u8(1 if value else 0)
        elif isinstance(value, int):
            self.u8(_VAL_INT)
            self.i64(value)
        elif isinstance(value, float):
            self.u8(_VAL_FLOAT)
            self.f64(value)
        elif isinstance(value, str):
            self.u8(_VAL_STR)
            self.string(value)
        elif isinstance(value, _dt.date):
            self.u8(_VAL_DATE)
            self.string(value.isoformat())
        elif hasattr(value, "__index__"):
            # numpy integer scalars (vectorized-baseline rows) and other
            # int-alikes travel as plain INT values.
            self.u8(_VAL_INT)
            self.i64(value.__index__())
        else:
            raise ProtocolError(
                f"value {value!r} of type {type(value).__name__} is not "
                f"representable on the wire")

    def getvalue(self) -> bytes:
        return b"".join(self._parts)


class PayloadReader:
    """Bounds-checked sequential reader over one frame payload."""

    __slots__ = ("_data", "_pos")

    def __init__(self, data: bytes):
        self._data = data
        self._pos = 0

    def _take(self, count: int) -> bytes:
        end = self._pos + count
        if end > len(self._data):
            raise ProtocolError(
                f"truncated frame payload: wanted {count} byte(s) at "
                f"offset {self._pos}, have {len(self._data) - self._pos}")
        chunk = self._data[self._pos:end]
        self._pos = end
        return chunk

    def u8(self) -> int:
        return _U8.unpack(self._take(1))[0]

    def u32(self) -> int:
        return _U32.unpack(self._take(4))[0]

    def u64(self) -> int:
        return _U64.unpack(self._take(8))[0]

    def i64(self) -> int:
        return _I64.unpack(self._take(8))[0]

    def f64(self) -> float:
        return _F64.unpack(self._take(8))[0]

    def string(self) -> str:
        length = self.u32()
        try:
            return self._take(length).decode("utf-8")
        except UnicodeDecodeError as exc:
            raise ProtocolError(f"invalid UTF-8 in string field: {exc}")

    def value(self):
        tag = self.u8()
        if tag == _VAL_INT:
            return self.i64()
        if tag == _VAL_FLOAT:
            return self.f64()
        if tag == _VAL_STR:
            return self.string()
        if tag == _VAL_BOOL:
            return self.u8() != 0
        if tag == _VAL_DATE:
            try:
                return _dt.date.fromisoformat(self.string())
            except ValueError as exc:
                raise ProtocolError(f"invalid DATE value: {exc}")
        raise ProtocolError(f"unknown value tag {tag}")

    def expect_end(self) -> None:
        if self._pos != len(self._data):
            raise ProtocolError(
                f"{len(self._data) - self._pos} trailing byte(s) after "
                f"frame payload")


# ---------------------------------------------------------------------- #
# messages
# ---------------------------------------------------------------------- #
@dataclass
class Hello:
    """Client handshake: credentials + requested session identity."""

    frame_type = HELLO
    token: str = ""
    session_name: str = ""
    protocol_version: int = PROTOCOL_VERSION

    def pack_payload(self, writer: PayloadWriter) -> None:
        writer.u32(self.protocol_version)
        writer.string(self.token)
        writer.string(self.session_name)

    @classmethod
    def unpack(cls, reader: PayloadReader) -> "Hello":
        version = reader.u32()
        return cls(protocol_version=version, token=reader.string(),
                   session_name=reader.string())


@dataclass
class Welcome:
    """Server handshake response: the session is established."""

    frame_type = WELCOME
    session_name: str = ""
    server_version: str = ""

    def pack_payload(self, writer: PayloadWriter) -> None:
        writer.string(self.session_name)
        writer.string(self.server_version)

    @classmethod
    def unpack(cls, reader: PayloadReader) -> "Welcome":
        return cls(session_name=reader.string(),
                   server_version=reader.string())


@dataclass
class Prepare:
    frame_type = PREPARE
    request_id: int = 0
    sql: str = ""

    def pack_payload(self, writer: PayloadWriter) -> None:
        writer.u64(self.request_id)
        writer.string(self.sql)

    @classmethod
    def unpack(cls, reader: PayloadReader) -> "Prepare":
        return cls(request_id=reader.u64(), sql=reader.string())


@dataclass
class Prepared:
    """Statement handle + typed metadata of a successful PREPARE."""

    frame_type = PREPARED
    request_id: int = 0
    statement_id: int = 0
    #: ``(name, sql type name)`` per parameter slot; positional slots have
    #: an empty name.
    parameters: list = field(default_factory=list)
    column_names: list = field(default_factory=list)
    #: SQL type names (``SQLType.value``) per result column.
    column_types: list = field(default_factory=list)

    def pack_payload(self, writer: PayloadWriter) -> None:
        writer.u64(self.request_id)
        writer.u64(self.statement_id)
        writer.u32(len(self.parameters))
        for name, type_name in self.parameters:
            writer.string(name)
            writer.string(type_name)
        writer.u32(len(self.column_names))
        for name, type_name in zip(self.column_names, self.column_types):
            writer.string(name)
            writer.string(type_name)

    @classmethod
    def unpack(cls, reader: PayloadReader) -> "Prepared":
        msg = cls(request_id=reader.u64(), statement_id=reader.u64())
        for _ in range(reader.u32()):
            msg.parameters.append((reader.string(), reader.string()))
        for _ in range(reader.u32()):
            msg.column_names.append(reader.string())
            msg.column_types.append(reader.string())
        return msg


#: ``params`` kind discriminants of an EXECUTE frame.
_PARAMS_NONE = 0
_PARAMS_POSITIONAL = 1
_PARAMS_NAMED = 2


@dataclass
class Execute:
    """Run raw SQL (``statement_id == 0``) or a prepared statement."""

    frame_type = EXECUTE
    request_id: int = 0
    statement_id: int = 0
    sql: str = ""
    #: ``None`` | sequence (positional) | mapping (named), natural values.
    params: object = None
    #: ``ExecOptions`` field overrides for this request (mode, threads, ...).
    options: dict = field(default_factory=dict)
    #: Max rows per ROW_BATCH frame (0 = server default).
    batch_rows: int = 0

    def pack_payload(self, writer: PayloadWriter) -> None:
        writer.u64(self.request_id)
        writer.u64(self.statement_id)
        writer.string(self.sql)
        if self.params is None:
            writer.u8(_PARAMS_NONE)
        elif isinstance(self.params, dict):
            writer.u8(_PARAMS_NAMED)
            writer.u32(len(self.params))
            for name, value in self.params.items():
                writer.string(str(name))
                writer.value(value)
        else:
            writer.u8(_PARAMS_POSITIONAL)
            values = list(self.params)
            writer.u32(len(values))
            for value in values:
                writer.value(value)
        writer.u32(len(self.options))
        for name, value in self.options.items():
            writer.string(str(name))
            writer.value(value)
        writer.u32(self.batch_rows)

    @classmethod
    def unpack(cls, reader: PayloadReader) -> "Execute":
        msg = cls(request_id=reader.u64(), statement_id=reader.u64(),
                  sql=reader.string())
        kind = reader.u8()
        if kind == _PARAMS_POSITIONAL:
            msg.params = [reader.value() for _ in range(reader.u32())]
        elif kind == _PARAMS_NAMED:
            msg.params = {reader.string(): reader.value()
                          for _ in range(reader.u32())}
        elif kind != _PARAMS_NONE:
            raise ProtocolError(f"unknown params kind {kind}")
        for _ in range(reader.u32()):
            name = reader.string()
            msg.options[name] = reader.value()
        msg.batch_rows = reader.u32()
        return msg


def _pack_params(writer: PayloadWriter, params) -> None:
    """One binding in the EXECUTE params encoding (kind + values)."""
    if params is None:
        writer.u8(_PARAMS_NONE)
    elif isinstance(params, dict):
        writer.u8(_PARAMS_NAMED)
        writer.u32(len(params))
        for name, value in params.items():
            writer.string(str(name))
            writer.value(value)
    else:
        writer.u8(_PARAMS_POSITIONAL)
        values = list(params)
        writer.u32(len(values))
        for value in values:
            writer.value(value)


def _unpack_params(reader: PayloadReader):
    kind = reader.u8()
    if kind == _PARAMS_POSITIONAL:
        return [reader.value() for _ in range(reader.u32())]
    if kind == _PARAMS_NAMED:
        return {reader.string(): reader.value()
                for _ in range(reader.u32())}
    if kind != _PARAMS_NONE:
        raise ProtocolError(f"unknown params kind {kind}")
    return None


@dataclass
class ExecuteMany:
    """Run one statement (raw SQL or prepared id) for a batch of bindings."""

    frame_type = EXECUTE_MANY
    request_id: int = 0
    statement_id: int = 0
    sql: str = ""
    #: One entry per binding, each in the EXECUTE params encoding.
    bindings: list = field(default_factory=list)
    #: ``ExecOptions`` field overrides for this request (mode, threads, ...).
    options: dict = field(default_factory=dict)
    #: Max rows per ROW_BATCH frame (0 = server default).
    batch_rows: int = 0

    def pack_payload(self, writer: PayloadWriter) -> None:
        writer.u64(self.request_id)
        writer.u64(self.statement_id)
        writer.string(self.sql)
        writer.u32(len(self.bindings))
        for binding in self.bindings:
            _pack_params(writer, binding)
        writer.u32(len(self.options))
        for name, value in self.options.items():
            writer.string(str(name))
            writer.value(value)
        writer.u32(self.batch_rows)

    @classmethod
    def unpack(cls, reader: PayloadReader) -> "ExecuteMany":
        msg = cls(request_id=reader.u64(), statement_id=reader.u64(),
                  sql=reader.string())
        msg.bindings = [_unpack_params(reader)
                        for _ in range(reader.u32())]
        for _ in range(reader.u32()):
            name = reader.string()
            msg.options[name] = reader.value()
        msg.batch_rows = reader.u32()
        return msg


@dataclass
class BatchDone:
    """Per-binding terminal frame inside an EXECUTE_MANY stream."""

    frame_type = BATCH_DONE
    request_id: int = 0
    #: Zero-based position of the finished binding in the request's batch.
    binding_index: int = 0
    row_count: int = 0
    cached: bool = False
    #: What this binding reused: "" (cold), "plan" or "result".
    cache_source: str = ""

    def pack_payload(self, writer: PayloadWriter) -> None:
        writer.u64(self.request_id)
        writer.u32(self.binding_index)
        writer.u64(self.row_count)
        writer.u8(1 if self.cached else 0)
        writer.string(self.cache_source)

    @classmethod
    def unpack(cls, reader: PayloadReader) -> "BatchDone":
        return cls(request_id=reader.u64(), binding_index=reader.u32(),
                   row_count=reader.u64(), cached=reader.u8() != 0,
                   cache_source=reader.string())


@dataclass
class RowHeader:
    """Typed column metadata preceding the row batches of one EXECUTE."""

    frame_type = ROW_HEADER
    request_id: int = 0
    column_names: list = field(default_factory=list)
    column_types: list = field(default_factory=list)

    def pack_payload(self, writer: PayloadWriter) -> None:
        writer.u64(self.request_id)
        writer.u32(len(self.column_names))
        for name, type_name in zip(self.column_names, self.column_types):
            writer.string(name)
            writer.string(type_name)

    @classmethod
    def unpack(cls, reader: PayloadReader) -> "RowHeader":
        msg = cls(request_id=reader.u64())
        for _ in range(reader.u32()):
            msg.column_names.append(reader.string())
            msg.column_types.append(reader.string())
        return msg


@dataclass
class RowBatch:
    """One bounded batch of result rows (internal-representation values)."""

    frame_type = ROW_BATCH
    request_id: int = 0
    rows: list = field(default_factory=list)

    def pack_payload(self, writer: PayloadWriter) -> None:
        writer.u64(self.request_id)
        writer.u32(len(self.rows))
        for row in self.rows:
            writer.u32(len(row))
            for value in row:
                writer.value(value)

    @classmethod
    def unpack(cls, reader: PayloadReader) -> "RowBatch":
        msg = cls(request_id=reader.u64())
        for _ in range(reader.u32()):
            msg.rows.append(tuple(reader.value()
                                  for _ in range(reader.u32())))
        return msg


@dataclass
class Done:
    """Terminal frame of a successful EXECUTE, with execution statistics."""

    frame_type = DONE
    request_id: int = 0
    row_count: int = 0
    mode: str = ""
    cached: bool = False
    #: Engine-side seconds: work (``timings.total``) and admission wait.
    total_seconds: float = 0.0
    queue_seconds: float = 0.0

    def pack_payload(self, writer: PayloadWriter) -> None:
        writer.u64(self.request_id)
        writer.u64(self.row_count)
        writer.string(self.mode)
        writer.u8(1 if self.cached else 0)
        writer.f64(self.total_seconds)
        writer.f64(self.queue_seconds)

    @classmethod
    def unpack(cls, reader: PayloadReader) -> "Done":
        return cls(request_id=reader.u64(), row_count=reader.u64(),
                   mode=reader.string(), cached=reader.u8() != 0,
                   total_seconds=reader.f64(), queue_seconds=reader.f64())


@dataclass
class Error:
    """Failure of one request (or of the connection, ``request_id == 0``)."""

    frame_type = ERROR
    request_id: int = 0
    code: str = "INTERNAL"
    message: str = ""
    #: Backoff hint for ``BUSY`` errors, milliseconds (0 = none).
    retry_after_ms: int = 0

    def pack_payload(self, writer: PayloadWriter) -> None:
        writer.u64(self.request_id)
        writer.string(self.code)
        writer.string(self.message)
        writer.u32(self.retry_after_ms)

    @classmethod
    def unpack(cls, reader: PayloadReader) -> "Error":
        return cls(request_id=reader.u64(), code=reader.string(),
                   message=reader.string(), retry_after_ms=reader.u32())


@dataclass
class Cancel:
    """Request cancellation of an in-flight EXECUTE on this connection."""

    frame_type = CANCEL
    request_id: int = 0
    target_request_id: int = 0

    def pack_payload(self, writer: PayloadWriter) -> None:
        writer.u64(self.request_id)
        writer.u64(self.target_request_id)

    @classmethod
    def unpack(cls, reader: PayloadReader) -> "Cancel":
        return cls(request_id=reader.u64(),
                   target_request_id=reader.u64())


@dataclass
class CancelResult:
    """Whether the CANCEL took effect (False: target already ran/finished)."""

    frame_type = CANCEL_RESULT
    request_id: int = 0
    cancelled: bool = False

    def pack_payload(self, writer: PayloadWriter) -> None:
        writer.u64(self.request_id)
        writer.u8(1 if self.cancelled else 0)

    @classmethod
    def unpack(cls, reader: PayloadReader) -> "CancelResult":
        return cls(request_id=reader.u64(), cancelled=reader.u8() != 0)


@dataclass
class CloseStatement:
    frame_type = CLOSE_STATEMENT
    request_id: int = 0
    statement_id: int = 0

    def pack_payload(self, writer: PayloadWriter) -> None:
        writer.u64(self.request_id)
        writer.u64(self.statement_id)

    @classmethod
    def unpack(cls, reader: PayloadReader) -> "CloseStatement":
        return cls(request_id=reader.u64(), statement_id=reader.u64())


@dataclass
class Ok:
    """Generic positive acknowledgement (CLOSE_STATEMENT)."""

    frame_type = OK
    request_id: int = 0

    def pack_payload(self, writer: PayloadWriter) -> None:
        writer.u64(self.request_id)

    @classmethod
    def unpack(cls, reader: PayloadReader) -> "Ok":
        return cls(request_id=reader.u64())


@dataclass
class Goodbye:
    """Orderly connection shutdown; the server echoes it back, then closes."""

    frame_type = GOODBYE

    def pack_payload(self, writer: PayloadWriter) -> None:
        pass

    @classmethod
    def unpack(cls, reader: PayloadReader) -> "Goodbye":
        return cls()


_MESSAGE_TYPES = {
    cls.frame_type: cls
    for cls in (Hello, Welcome, Prepare, Prepared, Execute, ExecuteMany,
                RowHeader, RowBatch, Done, BatchDone, Error, Cancel,
                CancelResult, CloseStatement, Ok, Goodbye)
}


# ---------------------------------------------------------------------- #
# frame codec entry points
# ---------------------------------------------------------------------- #
def encode_frame(message) -> bytes:
    """Serialize one message into a complete frame (header + payload)."""
    writer = PayloadWriter()
    message.pack_payload(writer)
    payload = writer.getvalue()
    if len(payload) > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame payload of {len(payload)} bytes exceeds the "
            f"{MAX_FRAME_BYTES}-byte limit")
    return FRAME_HEADER.pack(len(payload), message.frame_type) + payload


def decode_header(header: bytes) -> tuple[int, int]:
    """``(payload length, frame type)`` from a 5-byte header.

    Enforces the frame-size bound *before* any payload is read, so an
    adversarial length prefix never causes a large allocation.
    """
    if len(header) != FRAME_HEADER_BYTES:
        raise ProtocolError(
            f"short frame header: {len(header)} byte(s)")
    length, frame_type = FRAME_HEADER.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"declared frame payload of {length} bytes exceeds the "
            f"{MAX_FRAME_BYTES}-byte limit")
    return length, frame_type


def decode_payload(frame_type: int, payload: bytes):
    """Decode one payload into its message; strict about trailing bytes."""
    cls = _MESSAGE_TYPES.get(frame_type)
    if cls is None:
        raise ProtocolError(f"unknown frame type 0x{frame_type:02x}")
    reader = PayloadReader(payload)
    message = cls.unpack(reader)
    reader.expect_end()
    return message


# ---------------------------------------------------------------------- #
# typed row decoding (shared by client and tests)
# ---------------------------------------------------------------------- #
def decode_result_rows(rows: list, type_names: list) -> list:
    """Internal-representation rows -> Python objects, per column type."""
    from ..types import decode_internal_value
    types = [SQLType(name) for name in type_names]
    return [tuple(decode_internal_value(value, sql_type)
                  for value, sql_type in zip(row, types))
            for row in rows]
