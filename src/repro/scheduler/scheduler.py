"""Admission control and asynchronous query submission.

:class:`QueryScheduler` turns the engine from call-and-wait into a serving
layer: clients ``submit`` SQL and get a :class:`QueryTicket` back
immediately; the query runs on the shared :class:`~repro.scheduler.pool.WorkerPool`
when admission allows.  Two knobs bound the system:

* ``max_concurrent`` -- how many queries may be *running* at once.  The
  scheduler is itself a :class:`~repro.scheduler.pool.TaskSource`: starting
  an admitted query is just another task the pool round-robins against the
  morsel work of already-running queries, so admissions never need a
  dedicated dispatcher thread.
* ``max_pending`` -- how many queries may be *queued* awaiting admission.
  When the queue is full, ``submit`` either blocks for space (the default,
  optionally with a timeout) or rejects immediately with
  :class:`~repro.errors.AdmissionError` (``block=False``) -- backpressure
  instead of unbounded memory growth.

Queue wait is measured per ticket and reported as ``timings.queue`` on the
result, so benchmarks can split end-to-end latency into wait vs. run time.
"""

from __future__ import annotations

import enum
import threading
import time
from collections import deque
from dataclasses import dataclass, replace
from typing import Callable, Optional

from ..errors import AdmissionError, QueryCancelledError, SchedulerError
from ..options import ExecOptions, OptionsAccessors
from .pool import TaskSource, WorkerPool


class TicketState(enum.Enum):
    PENDING = "pending"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    CANCELLED = "cancelled"


class QueryTicket(OptionsAccessors):
    """Handle to one submitted query; resolves to a ``QueryResult``."""

    def __init__(self, scheduler: "QueryScheduler", sql: str,
                 options: ExecOptions, params=None, session=None,
                 bindings=None):
        self._scheduler = scheduler
        self.sql = sql
        #: The resolved execution options of this submission.
        self.options = options
        #: Bind-parameter values (sequence / mapping / None).
        self.params = params
        #: Batch bindings of an ``execute_many`` submission (``None`` for a
        #: single execution).  A batch ticket resolves to the ordered
        #: ``list[QueryResult]``.
        self.bindings = bindings
        self.session = session
        self.submitted_at = time.perf_counter()
        self.started_at: Optional[float] = None
        self.finished_at: Optional[float] = None
        self._state = TicketState.PENDING
        self._event = threading.Event()
        self._result = None
        self._error: Optional[BaseException] = None
        self._callback_lock = threading.Lock()
        self._callbacks: list[Callable[["QueryTicket"], None]] = []

    # ------------------------------------------------------------------ #
    @property
    def state(self) -> TicketState:
        return self._state

    def done(self) -> bool:
        """True once the query finished, failed, or was cancelled."""
        return self._event.is_set()

    @property
    def queue_seconds(self) -> Optional[float]:
        """Seconds spent waiting for admission (None while still queued)."""
        if self.started_at is None:
            return None
        return self.started_at - self.submitted_at

    def result(self, timeout: Optional[float] = None):
        """Block until the query completes and return its ``QueryResult``.

        Re-raises the query's error if it failed, raises
        :class:`~repro.errors.QueryCancelledError` if the ticket was
        cancelled, and :class:`TimeoutError` if ``timeout`` elapses first
        (the query keeps running; call ``result`` again to re-wait).
        """
        if not self._event.wait(timeout):
            raise TimeoutError(
                f"query did not complete within {timeout} seconds")
        if self._state is TicketState.CANCELLED:
            raise QueryCancelledError(
                f"query was cancelled before it ran: {self.sql!r}")
        if self._error is not None:
            raise self._error
        return self._result

    def cancel(self) -> bool:
        """Cancel the query if it has not started running yet.

        Returns True when the ticket was still pending and is now
        cancelled; False when the query is already running or finished
        (a running query is never preempted).
        """
        return self._scheduler._cancel(self)

    def add_done_callback(self, callback: Callable[["QueryTicket"], None]
                          ) -> None:
        """Invoke ``callback(ticket)`` once the ticket completes.

        The bridge for event-driven callers (the asyncio network server):
        instead of blocking a thread in :meth:`result`, register a callback
        and resolve a future from it.  Callbacks run on the scheduler's
        worker thread (or the canceller's thread), immediately after the
        completion event fires -- or synchronously here when the ticket is
        already done.  They must be cheap and must not raise; exceptions
        are swallowed so ticket resolution can never be derailed.
        """
        with self._callback_lock:
            if not self._event.is_set():
                self._callbacks.append(callback)
                return
        self._invoke_callback(callback)

    def _invoke_callback(self, callback) -> None:
        try:
            callback(self)
        except Exception:  # pragma: no cover - defensive
            pass

    def _run_callbacks(self) -> None:
        with self._callback_lock:
            callbacks, self._callbacks = self._callbacks, []
        for callback in callbacks:
            self._invoke_callback(callback)

    # ------------------------------------------------------------------ #
    # scheduler-side transitions
    # ------------------------------------------------------------------ #
    def _mark_running(self) -> None:
        self.started_at = time.perf_counter()
        self._state = TicketState.RUNNING

    def _resolve(self, result) -> None:
        self.finished_at = time.perf_counter()
        self._result = result
        self._state = TicketState.DONE
        self._event.set()
        self._run_callbacks()

    def _fail(self, error: BaseException) -> None:
        self.finished_at = time.perf_counter()
        self._error = error
        self._state = TicketState.FAILED
        self._event.set()
        self._run_callbacks()

    def _mark_cancelled(self) -> None:
        self.finished_at = time.perf_counter()
        self._state = TicketState.CANCELLED
        self._event.set()
        self._run_callbacks()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"<QueryTicket {self._state.value} mode={self.mode!r} "
                f"sql={self.sql[:40]!r}>")


@dataclass
class SchedulerStats:
    """Lifetime counters of one scheduler (thread-safe snapshot)."""

    submitted: int = 0
    completed: int = 0
    failed: int = 0
    cancelled: int = 0
    #: Submissions rejected by the bounded admission queue.
    rejected: int = 0
    #: High-water mark of simultaneously running queries.
    peak_running: int = 0
    #: High-water mark of the admission queue length.
    peak_pending: int = 0


class QueryScheduler(TaskSource):
    """Bounded admission queue in front of the shared worker pool."""

    def __init__(self, database, pool: WorkerPool,
                 max_concurrent: Optional[int] = None,
                 max_pending: int = 256):
        self._database = database
        self._pool = pool
        self.max_concurrent = max(int(max_concurrent or pool.size), 1)
        self.max_pending = max(int(max_pending), 1)
        self._pending: deque[QueryTicket] = deque()
        self._running = 0
        self._stats = SchedulerStats()
        self._closed = False
        self._attached = False
        #: Latency instruments from the database's metrics registry
        #: (observed per ticket unless its telemetry level is "off"; the
        #: lifetime counters in ``SchedulerStats`` are surfaced through
        #: snapshot-time registry callbacks instead -- zero added cost).
        metrics = getattr(database, "metrics", None)
        self._queue_seconds = (metrics.histogram(
            "scheduler.queue_seconds", "Seconds queued awaiting admission")
            if metrics is not None else None)
        self._ticket_seconds = (metrics.histogram(
            "scheduler.ticket_seconds",
            "End-to-end seconds from submit to completion")
            if metrics is not None else None)

    # ------------------------------------------------------------------ #
    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def stats(self) -> SchedulerStats:
        with self._pool.condition:
            return replace(self._stats)

    @property
    def pending_count(self) -> int:
        with self._pool.condition:
            return len(self._pending)

    @property
    def running_count(self) -> int:
        with self._pool.condition:
            return self._running

    # ------------------------------------------------------------------ #
    def submit(self, sql: str, mode: Optional[str] = None,
               threads: Optional[int] = None,
               collect_trace: Optional[bool] = None,
               use_cache: Optional[bool] = None,
               session=None, block: bool = True,
               timeout: Optional[float] = None,
               options: Optional[ExecOptions] = None,
               params=None, bindings=None) -> QueryTicket:
        """Queue ``sql`` for execution and return its ticket immediately.

        ``options`` carries the execution options (legacy keywords override
        individual fields); ``params`` supplies bind-parameter values.
        ``bindings`` submits a whole ``execute_many`` batch as one unit:
        the batch occupies a single admission slot and the ticket resolves
        to the ordered result list instead of a single result.
        Invalid modes are rejected here (synchronously) rather than when
        the query eventually runs.  A full admission queue blocks the
        caller until space frees up (``timeout`` bounds the wait), or
        rejects at once with :class:`AdmissionError` when ``block=False``.
        """
        opts = ExecOptions.resolve(options, mode=mode, threads=threads,
                                   collect_trace=collect_trace,
                                   use_cache=use_cache)
        self._database._validate_options(sql, opts)
        ticket = QueryTicket(self, sql, opts, params, session,
                             bindings=bindings)
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._pool.condition:
            while True:
                if self._closed:
                    raise SchedulerError("scheduler is closed")
                if len(self._pending) < self.max_pending:
                    break
                if not block:
                    self._stats.rejected += 1
                    raise AdmissionError(
                        f"admission queue is full "
                        f"({self.max_pending} pending queries)")
                remaining = (None if deadline is None
                             else deadline - time.monotonic())
                if remaining is not None and remaining <= 0:
                    self._stats.rejected += 1
                    raise AdmissionError(
                        f"admission queue still full after {timeout} seconds")
                self._pool.condition.wait(remaining)
            self._pending.append(ticket)
            self._stats.submitted += 1
            self._stats.peak_pending = max(self._stats.peak_pending,
                                           len(self._pending))
            self._pool.condition.notify_all()
        if session is not None:
            session._record_submitted()
        if not self._attached:
            self._pool.attach(self)
            self._attached = True
        return ticket

    # ------------------------------------------------------------------ #
    # TaskSource interface (called with the pool condition held)
    # ------------------------------------------------------------------ #
    def claim(self) -> Optional[Callable[[], None]]:
        if self._running >= self.max_concurrent:
            return None
        while self._pending:
            ticket = self._pending.popleft()
            # The pop freed an admission-queue slot: wake submitters blocked
            # on a full queue now, not when the query eventually finishes.
            self._pool.condition.notify_all()
            if ticket.state is TicketState.CANCELLED:
                continue
            self._running += 1
            self._stats.peak_running = max(self._stats.peak_running,
                                           self._running)
            return lambda: self._run(ticket)
        return None

    @property
    def exhausted(self) -> bool:
        return self._closed and not self._pending

    @property
    def finished(self) -> bool:
        return self.exhausted and self._running == 0

    # ------------------------------------------------------------------ #
    def _run(self, ticket: QueryTicket) -> None:
        result = None
        error: Optional[BaseException] = None
        observe = (self._queue_seconds is not None
                   and ticket.options.telemetry != "off")
        try:
            ticket._mark_running()
            if observe:
                self._queue_seconds.observe(
                    ticket.started_at - ticket.submitted_at)
            queue_seconds = ticket.started_at - ticket.submitted_at
            if ticket.bindings is not None:
                result = self._database.execute_many(
                    ticket.sql, ticket.bindings, options=ticket.options)
                # The whole batch waited together; stamp the shared queue
                # time on each result so latency accounting stays visible.
                for item in result:
                    item.timings.queue = queue_seconds
            else:
                result = self._database.execute(
                    ticket.sql, options=ticket.options, params=ticket.params)
                result.timings.queue = queue_seconds
        except BaseException as exc:
            error = exc
        # All bookkeeping happens *before* the ticket event fires, so a
        # caller returning from ``ticket.result()`` observes up-to-date
        # scheduler and session statistics.
        with self._pool.condition:
            self._running -= 1
            if error is None:
                self._stats.completed += 1
            else:
                self._stats.failed += 1
            self._pool.condition.notify_all()
        session = ticket.session
        if session is not None:
            if error is not None:
                session._record_failure()
            elif ticket.bindings is not None:
                for item in result:
                    session._record_result(item)
            else:
                session._record_result(result)
        if error is None:
            ticket._resolve(result)
        else:
            ticket._fail(error)
        if observe and ticket.finished_at is not None:
            self._ticket_seconds.observe(
                ticket.finished_at - ticket.submitted_at)

    def _cancel(self, ticket: QueryTicket) -> bool:
        with self._pool.condition:
            if ticket.state is not TicketState.PENDING:
                return False
            try:
                self._pending.remove(ticket)
            except ValueError:
                # Claimed between the state check and now -- extremely
                # unlikely under the single condition, but stay safe.
                return False
            ticket._mark_cancelled()
            self._stats.cancelled += 1
            self._pool.condition.notify_all()
        if ticket.session is not None:
            ticket.session._record_cancelled()
        return True

    # ------------------------------------------------------------------ #
    def close(self, wait: bool = True,
              timeout: Optional[float] = None) -> None:
        """Stop admitting queries; cancel queued ones; wait for running.

        ``timeout`` bounds the wait for in-flight queries (``None`` waits
        indefinitely).  Queries still running when the deadline passes are
        left to finish on the pool -- they complete their tickets normally,
        the scheduler just stops waiting for them.
        """
        deadline = (None if timeout is None
                    else time.monotonic() + max(timeout, 0.0))
        with self._pool.condition:
            if not self._closed:
                self._closed = True
                cancelled = list(self._pending)
                self._pending.clear()
                for ticket in cancelled:
                    ticket._mark_cancelled()
                    self._stats.cancelled += 1
                self._pool.condition.notify_all()
            else:
                cancelled = []
            if wait:
                while self._running > 0:
                    if deadline is None:
                        self._pool.condition.wait()
                        continue
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        break
                    self._pool.condition.wait(remaining)
        for ticket in cancelled:
            if ticket.session is not None:
                ticket.session._record_cancelled()
        self._pool.detach(self)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"<QueryScheduler running={self.running_count} "
                f"pending={self.pending_count} "
                f"max_concurrent={self.max_concurrent}>")
