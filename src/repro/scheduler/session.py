"""Sessions: per-client execution defaults and statistics.

A :class:`Session` models one client of the database: it carries the
client's default execution parameters (mode, thread budget, tracing, cache
usage) so call sites submit plain SQL, and it accumulates statistics over
everything the client ran -- queries, rows, failures, and the queue-wait
versus run-time split the scheduler measures.  Sessions are cheap; create
one per logical client (``Database.session()``) and close it when done.
All methods are thread-safe.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, replace
from typing import Optional

from ..errors import SchedulerError
from ..options import ExecOptions, OptionsAccessors


@dataclass
class SessionStats:
    """Counters accumulated over one session's lifetime."""

    #: Queries handed to the database (both ``execute`` and ``submit``).
    submitted: int = 0
    completed: int = 0
    failed: int = 0
    cancelled: int = 0
    #: Total result rows over all completed queries.
    rows: int = 0
    #: Seconds queries spent waiting for admission/dispatch (``submit`` only).
    queue_seconds: float = 0.0
    #: Seconds spent actually running (sum of ``PhaseTimings.total``).
    run_seconds: float = 0.0


class Session(OptionsAccessors):
    """One client's view of a :class:`repro.Database`."""

    def __init__(self, database, mode: Optional[str] = None,
                 threads: Optional[int] = None,
                 collect_trace: Optional[bool] = None,
                 use_cache: Optional[bool] = None,
                 name: str = "",
                 options: Optional[ExecOptions] = None):
        self.database = database
        #: The session's default execution options; per-call overrides are
        #: resolved on top of this value.
        self.options = ExecOptions.resolve(options, mode=mode,
                                           threads=threads,
                                           collect_trace=collect_trace,
                                           use_cache=use_cache)
        self.name = name or f"session-{id(self):x}"
        self._lock = threading.Lock()
        self._stats = SessionStats()
        self._closed = False

    # ------------------------------------------------------------------ #
    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def stats(self) -> SessionStats:
        """A point-in-time copy of the session counters."""
        with self._lock:
            return replace(self._stats)

    def _resolve(self, overrides: dict) -> ExecOptions:
        try:
            return self.options.merged(**overrides)
        except Exception as exc:
            raise SchedulerError(
                f"invalid session override(s) {sorted(overrides)}: "
                f"{exc}") from exc

    def _check_open(self) -> None:
        if self._closed:
            raise SchedulerError(f"session {self.name!r} is closed")

    # ------------------------------------------------------------------ #
    def execute(self, sql: str, params=None, **overrides):
        """Synchronously execute ``sql`` with the session's defaults.

        ``params`` supplies bind-parameter values; the remaining keyword
        overrides (``mode=``, ``threads=``, ...) apply on top of the
        session's default :class:`ExecOptions` for this call only.
        """
        self._check_open()
        options = self._resolve(overrides)
        with self._lock:
            self._stats.submitted += 1
        try:
            result = self.database.execute(sql, options=options,
                                           params=params)
        except BaseException:
            self._record_failure()
            raise
        self._record_result(result)
        return result

    def execute_many(self, sql: str, bindings, **overrides):
        """Synchronously execute one statement for every binding.

        The session counts each binding as one submitted/completed query
        (they are logically N queries served in one batch); returns the
        ordered ``list[QueryResult]``.
        """
        self._check_open()
        options = self._resolve(overrides)
        bindings = list(bindings)
        with self._lock:
            self._stats.submitted += len(bindings)
        try:
            results = self.database.execute_many(sql, bindings,
                                                 options=options)
        except BaseException:
            self._record_failure()
            raise
        for result in results:
            self._record_result(result)
        return results

    def submit_many(self, sql: str, bindings, **overrides):
        """Submit an ``execute_many`` batch; returns its ``QueryTicket``.

        The batch occupies one admission slot; the ticket resolves to the
        ordered result list, and per-binding completion is recorded on
        this session when the batch finishes.
        """
        self._check_open()
        options = self._resolve(overrides)
        bindings = list(bindings)
        ticket = self.database.scheduler.submit(
            sql, session=self, options=options, bindings=bindings)
        # The scheduler counted one submission on enqueue; the remaining
        # bindings of the batch are counted here so submitted == bindings.
        if len(bindings) > 1:
            with self._lock:
                self._stats.submitted += len(bindings) - 1
        return ticket

    def submit(self, sql: str, params=None, **overrides):
        """Submit ``sql`` to the scheduler; returns a ``QueryTicket``.

        The ticket reports completion back to this session, so the stats
        update when the query finishes, not when it is submitted.  A
        submission rejected before it is enqueued (bad override, invalid
        mode, full admission queue) is *not* counted as submitted.  The
        ``submitted`` counter itself is recorded by the scheduler on
        enqueue, so ``db.submit(sql, session=s)`` counts identically.
        """
        self._check_open()
        options = self._resolve(overrides)
        return self.database.scheduler.submit(sql, session=self,
                                              options=options, params=params)

    # ------------------------------------------------------------------ #
    # accounting callbacks (used by execute above and by the scheduler)
    # ------------------------------------------------------------------ #
    def _record_submitted(self) -> None:
        with self._lock:
            self._stats.submitted += 1

    def _record_result(self, result) -> None:
        with self._lock:
            self._stats.completed += 1
            self._stats.rows += len(result.rows)
            self._stats.queue_seconds += result.timings.queue
            self._stats.run_seconds += result.timings.total

    def _record_failure(self) -> None:
        with self._lock:
            self._stats.failed += 1

    def _record_cancelled(self) -> None:
        with self._lock:
            self._stats.cancelled += 1

    # ------------------------------------------------------------------ #
    def close(self) -> None:
        """Reject further queries from this session (stats stay readable)."""
        self._closed = True

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        stats = self.stats
        return (f"<Session {self.name} mode={self.mode!r} "
                f"submitted={stats.submitted} completed={stats.completed}>")
