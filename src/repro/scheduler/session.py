"""Sessions: per-client execution defaults and statistics.

A :class:`Session` models one client of the database: it carries the
client's default execution parameters (mode, thread budget, tracing, cache
usage) so call sites submit plain SQL, and it accumulates statistics over
everything the client ran -- queries, rows, failures, and the queue-wait
versus run-time split the scheduler measures.  Sessions are cheap; create
one per logical client (``Database.session()``) and close it when done.
All methods are thread-safe.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, replace

from ..errors import SchedulerError


@dataclass
class SessionStats:
    """Counters accumulated over one session's lifetime."""

    #: Queries handed to the database (both ``execute`` and ``submit``).
    submitted: int = 0
    completed: int = 0
    failed: int = 0
    cancelled: int = 0
    #: Total result rows over all completed queries.
    rows: int = 0
    #: Seconds queries spent waiting for admission/dispatch (``submit`` only).
    queue_seconds: float = 0.0
    #: Seconds spent actually running (sum of ``PhaseTimings.total``).
    run_seconds: float = 0.0


class Session:
    """One client's view of a :class:`repro.Database`."""

    def __init__(self, database, mode: str = "adaptive", threads: int = 1,
                 collect_trace: bool = False, use_cache: bool = True,
                 name: str = ""):
        self.database = database
        self.mode = mode
        self.threads = threads
        self.collect_trace = collect_trace
        self.use_cache = use_cache
        self.name = name or f"session-{id(self):x}"
        self._lock = threading.Lock()
        self._stats = SessionStats()
        self._closed = False

    # ------------------------------------------------------------------ #
    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def stats(self) -> SessionStats:
        """A point-in-time copy of the session counters."""
        with self._lock:
            return replace(self._stats)

    def _defaults(self, overrides: dict) -> dict:
        params = {"mode": self.mode, "threads": self.threads,
                  "collect_trace": self.collect_trace,
                  "use_cache": self.use_cache}
        unknown = set(overrides) - set(params)
        if unknown:
            raise SchedulerError(
                f"unknown session override(s) {sorted(unknown)}; "
                f"expected a subset of {sorted(params)}")
        params.update(overrides)
        return params

    def _check_open(self) -> None:
        if self._closed:
            raise SchedulerError(f"session {self.name!r} is closed")

    # ------------------------------------------------------------------ #
    def execute(self, sql: str, **overrides):
        """Synchronously execute ``sql`` with the session's defaults."""
        self._check_open()
        params = self._defaults(overrides)
        with self._lock:
            self._stats.submitted += 1
        try:
            result = self.database.execute(sql, **params)
        except BaseException:
            self._record_failure()
            raise
        self._record_result(result)
        return result

    def submit(self, sql: str, **overrides):
        """Submit ``sql`` to the scheduler; returns a ``QueryTicket``.

        The ticket reports completion back to this session, so the stats
        update when the query finishes, not when it is submitted.  A
        submission rejected before it is enqueued (bad override, invalid
        mode, full admission queue) is *not* counted as submitted.  The
        ``submitted`` counter itself is recorded by the scheduler on
        enqueue, so ``db.submit(sql, session=s)`` counts identically.
        """
        self._check_open()
        params = self._defaults(overrides)
        return self.database.scheduler.submit(sql, session=self, **params)

    # ------------------------------------------------------------------ #
    # accounting callbacks (used by execute above and by the scheduler)
    # ------------------------------------------------------------------ #
    def _record_submitted(self) -> None:
        with self._lock:
            self._stats.submitted += 1

    def _record_result(self, result) -> None:
        with self._lock:
            self._stats.completed += 1
            self._stats.rows += len(result.rows)
            self._stats.queue_seconds += result.timings.queue
            self._stats.run_seconds += result.timings.total

    def _record_failure(self) -> None:
        with self._lock:
            self._stats.failed += 1

    def _record_cancelled(self) -> None:
        with self._lock:
            self._stats.cancelled += 1

    # ------------------------------------------------------------------ #
    def close(self) -> None:
        """Reject further queries from this session (stats stay readable)."""
        self._closed = True

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        stats = self.stats
        return (f"<Session {self.name} mode={self.mode!r} "
                f"submitted={stats.submitted} completed={stats.completed}>")
