"""The shared worker pool: one set of long-lived threads for all queries.

Before this subsystem existed every parallel execution spawned its own
short-lived worker threads, so *k* concurrent queries with *t* threads each
put ``k * t`` threads on the machine.  :class:`WorkerPool` inverts that: a
database owns one pool of ``size`` long-lived workers, and every unit of
work -- a morsel of some query pipeline, or the admission of a whole queued
query -- is drawn from an attached :class:`TaskSource`.

Fairness is round-robin *across sources*: the pool keeps a cursor over the
attached sources and each claim starts at the source after the previously
served one.  Because every active query pipeline contributes its own source
(see :class:`MorselSource`), morsels of concurrent queries interleave
instead of one query monopolising the pool, and the scheduler's admission
source (which starts queued queries) competes on equal terms.

Locking discipline: the pool's :attr:`condition` is the single lock for all
pool *and* source bookkeeping -- ``claim`` is always called with it held,
and sources take it to record task completion.  Task bodies run without the
lock.  Workers sleep on the condition when no source has a claimable task;
every state change that could create one (attach, task completion freeing a
worker slot, query submission) notifies it.

:class:`CompileExecutor` is the pool's sibling for background tier
compilation: a single long-lived compile thread shared by all adaptive
executions, replacing the one-thread-per-compilation the executor used to
spawn.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Callable, Optional

from ..errors import SchedulerError


class TaskSource:
    """A stream of tasks the pool round-robins over.

    ``claim`` is called with the pool condition held and returns either a
    no-argument callable (one task, executed outside the lock) or ``None``
    when the source has nothing claimable *right now*.  ``exhausted`` means
    no future ``claim`` will ever return a task; ``finished`` additionally
    requires all previously claimed tasks to have completed.
    """

    def claim(self) -> Optional[Callable[[], None]]:  # pragma: no cover
        raise NotImplementedError

    @property
    def exhausted(self) -> bool:  # pragma: no cover - interface default
        return False

    @property
    def finished(self) -> bool:  # pragma: no cover - interface default
        return self.exhausted


class WorkerPool:
    """A fixed-size pool of daemon worker threads shared by all queries."""

    def __init__(self, size: int, name: str = "repro-worker", metrics=None):
        self.size = max(int(size), 1)
        self.name = name
        #: The one lock/condition guarding pool *and* source state.
        self.condition = threading.Condition()
        self._sources: list[TaskSource] = []
        self._cursor = 0
        self._threads: list[threading.Thread] = []
        self._closed = False
        #: Optional pool instruments from the owning database's metrics
        #: registry (sharded; updates never take a shared lock).
        self._tasks_counter = (metrics.counter(
            "pool.tasks_completed",
            "Tasks run by the worker pool (morsels, merges, admissions)")
            if metrics is not None else None)
        self._busy_gauge = (metrics.gauge(
            "pool.busy_workers", "Workers currently running a task")
            if metrics is not None else None)

    def _run_task(self, task: Callable[[], None]) -> None:
        """Run one claimed task with busy/throughput accounting."""
        busy = self._busy_gauge
        if busy is not None:
            busy.inc()
        try:
            task()
        finally:
            if busy is not None:
                busy.dec()
            if self._tasks_counter is not None:
                self._tasks_counter.inc()

    # ------------------------------------------------------------------ #
    @property
    def closed(self) -> bool:
        return self._closed

    def alive_workers(self) -> int:
        """Number of currently live pool threads (for tests/monitoring)."""
        return sum(1 for thread in self._threads if thread.is_alive())

    def kick(self) -> None:
        """Wake all workers (call after changing source state externally)."""
        with self.condition:
            self.condition.notify_all()

    # ------------------------------------------------------------------ #
    def attach(self, source: TaskSource) -> None:
        """Register a task source and make sure workers are running."""
        with self.condition:
            if self._closed:
                raise SchedulerError("worker pool is closed")
            if source not in self._sources:
                self._sources.append(source)
            self._ensure_workers_locked()
            self.condition.notify_all()

    def detach(self, source: TaskSource) -> None:
        with self.condition:
            try:
                index = self._sources.index(source)
            except ValueError:
                return
            self._sources.pop(index)
            if index < self._cursor:
                self._cursor -= 1
            if self._sources:
                self._cursor %= len(self._sources)
            else:
                self._cursor = 0
            self.condition.notify_all()

    def _ensure_workers_locked(self) -> None:
        self._threads = [t for t in self._threads if t.is_alive()]
        while len(self._threads) < self.size:
            thread = threading.Thread(
                target=self._worker_loop,
                name=f"{self.name}-{len(self._threads)}", daemon=True)
            self._threads.append(thread)
            thread.start()

    # ------------------------------------------------------------------ #
    def _claim_locked(self) -> Optional[Callable[[], None]]:
        """Round-robin claim across the attached sources (condition held)."""
        count = len(self._sources)
        for step in range(count):
            index = (self._cursor + step) % count
            task = self._sources[index].claim()
            if task is not None:
                self._cursor = (index + 1) % count
                return task
        return None

    def _worker_loop(self) -> None:
        while True:
            with self.condition:
                task = self._claim_locked()
                while task is None:
                    if self._closed:
                        return
                    self.condition.wait()
                    task = self._claim_locked()
            # Task bodies handle their own errors (see MorselSource); a
            # worker thread must never die to an exception.
            try:
                self._run_task(task)
            except BaseException:  # pragma: no cover - defensive
                pass

    # ------------------------------------------------------------------ #
    def drive(self, source: TaskSource) -> None:
        """Run ``source`` to completion, with the calling thread helping.

        The source is attached so pool workers pick its tasks up, while the
        caller claims and runs tasks from *this source only* in the same
        loop -- so progress is guaranteed even when every pool worker is
        busy driving other queries (the caller never just blocks on the
        pool).  Returns once the source is finished; the caller is expected
        to re-raise any recorded task failure afterwards.
        """
        self.attach(source)
        try:
            while True:
                with self.condition:
                    task = source.claim()
                    if task is None:
                        if source.exhausted:
                            break
                        self.condition.wait()
                        continue
                self._run_task(task)
            with self.condition:
                while not source.finished:
                    self.condition.wait()
        finally:
            self.detach(source)

    def run_morsels(self, dispatcher, run_morsel, max_workers: int) -> None:
        """Run one pipeline's morsels on the pool and re-raise failures.

        Convenience wrapper used by the executors: builds the
        :class:`MorselSource`, drives it (calling thread participates,
        bounded at ``max_workers``) and re-raises the first morsel failure.
        """
        source = MorselSource(self, dispatcher, run_morsel, max_workers)
        self.drive(source)
        source.raise_failure()

    # ------------------------------------------------------------------ #
    def close(self, wait: bool = True,
              timeout: Optional[float] = None) -> None:
        """Shut the pool down; idempotent.

        ``timeout`` bounds the join over all workers (``None`` waits
        indefinitely).  A worker still inside a long task when the deadline
        passes is left to drain on its own -- the threads are daemonic, so
        they can never hang interpreter exit.
        """
        deadline = (None if timeout is None
                    else time.monotonic() + max(timeout, 0.0))
        with self.condition:
            self._closed = True
            self.condition.notify_all()
            threads = list(self._threads)
        if wait:
            for thread in threads:
                if deadline is None:
                    thread.join()
                    continue
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    break
                thread.join(remaining)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "closed" if self._closed else f"{self.alive_workers()} alive"
        return f"<WorkerPool size={self.size} {state}>"


class MorselSource(TaskSource):
    """Feeds one pipeline's morsels from a dispatcher into the pool.

    ``run_morsel(slot, morsel)`` executes one morsel; ``slot`` is a dense
    worker-slot id in ``[0, max_workers)`` handed out per claim, so
    per-thread accounting (progress rates, trace lanes) stays stable no
    matter which pool thread actually runs the task.  At most
    ``max_workers`` tasks are in flight at once -- that is how a query's
    ``threads=N`` bounds its share of the pool.  The first task failure is
    recorded, further claims stop (the query aborts), and
    :meth:`raise_failure` re-raises it on the driving thread.
    """

    def __init__(self, pool: WorkerPool, dispatcher, run_morsel,
                 max_workers: int):
        self._pool = pool
        self._dispatcher = dispatcher
        self._run_morsel = run_morsel
        self.max_workers = max(int(max_workers), 1)
        self._free_slots = list(range(self.max_workers - 1, -1, -1))
        self._in_flight = 0
        self._no_more_tasks = False
        self._failure: Optional[BaseException] = None

    # ------------------------------------------------------------------ #
    def claim(self) -> Optional[Callable[[], None]]:
        if self._no_more_tasks or not self._free_slots:
            return None
        morsel = self._dispatcher.next_morsel()
        if morsel is None:
            self._no_more_tasks = True
            return None
        slot = self._free_slots.pop()
        self._in_flight += 1

        def task() -> None:
            failure = None
            try:
                self._run_morsel(slot, morsel)
            except BaseException as exc:
                failure = exc
            self._complete(slot, failure)

        return task

    def _complete(self, slot: int, failure: Optional[BaseException]) -> None:
        with self._pool.condition:
            self._free_slots.append(slot)
            self._in_flight -= 1
            if failure is not None:
                if self._failure is None:
                    self._failure = failure
                self._no_more_tasks = True
            self._pool.condition.notify_all()

    # ------------------------------------------------------------------ #
    @property
    def exhausted(self) -> bool:
        return self._no_more_tasks

    @property
    def finished(self) -> bool:
        return self._no_more_tasks and self._in_flight == 0

    def raise_failure(self) -> None:
        if self._failure is not None:
            raise self._failure


class CompileFuture:
    """Completion handle of one background compilation job."""

    __slots__ = ("_event", "_exception")

    def __init__(self):
        self._event = threading.Event()
        self._exception: Optional[BaseException] = None

    def wait(self, timeout: Optional[float] = None) -> bool:
        return self._event.wait(timeout)

    def done(self) -> bool:
        return self._event.is_set()

    def exception(self) -> Optional[BaseException]:
        """The job's exception, if any (after completion)."""
        return self._exception


class CompileExecutor:
    """One shared background thread running tier-compilation jobs.

    Adaptive executions used to spawn a fresh thread per compilation; with
    many concurrent queries that both defeats the bounded-thread guarantee
    and over-subscribes the machine.  All background compilations of one
    database now funnel through this single compile thread (started lazily,
    daemonic).  After :meth:`close`, ``submit`` degrades gracefully by
    running the job synchronously on the caller.

    The single thread serializes compile jobs, so under many concurrent
    cold adaptive queries a pipeline's end-of-run ``future.wait()`` can sit
    behind other queries' jobs (head-of-line blocking).  That is a
    deliberate trade-off for the bounded thread count: jobs are
    millisecond-scale, and the wait exists so ``timings.compile`` accounts
    background work exactly like the synchronous path (the PR 1 fix).
    Daemon threads (unlike ``concurrent.futures``) also guarantee that a
    database dropped without ``close()`` can never hang interpreter exit.
    """

    def __init__(self, name: str = "repro-compile", metrics=None):
        self.name = name
        self._condition = threading.Condition()
        self._queue: deque[tuple[Callable[[], None], CompileFuture]] = deque()
        self._thread: Optional[threading.Thread] = None
        self._closed = False
        self._jobs_counter = (metrics.counter(
            "compile.jobs", "Background tier-compilation jobs run")
            if metrics is not None else None)
        self._seconds_histogram = (metrics.histogram(
            "compile.seconds", "Wall-clock seconds per compile job")
            if metrics is not None else None)

    @property
    def closed(self) -> bool:
        return self._closed

    def pending(self) -> int:
        with self._condition:
            return len(self._queue)

    # ------------------------------------------------------------------ #
    def submit(self, job: Callable[[], None]) -> CompileFuture:
        future = CompileFuture()
        with self._condition:
            if not self._closed:
                self._queue.append((job, future))
                if self._thread is None or not self._thread.is_alive():
                    self._thread = threading.Thread(
                        target=self._loop, name=self.name, daemon=True)
                    self._thread.start()
                self._condition.notify_all()
                return future
        # Closed: run synchronously so callers never lose a compilation.
        self._run_job(job, future)
        return future

    def _run_job(self, job: Callable[[], None],
                 future: CompileFuture) -> None:
        start = time.perf_counter()
        try:
            job()
        except BaseException as exc:
            future._exception = exc
        finally:
            future._event.set()
            if self._jobs_counter is not None:
                self._jobs_counter.inc()
                self._seconds_histogram.observe(time.perf_counter() - start)

    def _loop(self) -> None:
        while True:
            with self._condition:
                while not self._queue:
                    if self._closed:
                        return
                    self._condition.wait()
                job, future = self._queue.popleft()
            self._run_job(job, future)

    # ------------------------------------------------------------------ #
    def close(self, wait: bool = True,
              timeout: Optional[float] = None) -> None:
        """Stop accepting jobs; the thread drains the queue, then exits.

        ``timeout`` bounds the join (``None`` waits indefinitely); the
        compile thread is daemonic, so an expired deadline just stops
        waiting for the drain.
        """
        with self._condition:
            self._closed = True
            self._condition.notify_all()
            thread = self._thread
        if wait and thread is not None:
            thread.join(timeout)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<CompileExecutor pending={self.pending()}>"
