"""Concurrent query scheduling (shared worker pool, sessions, admission).

The paper motivates adaptive compilation with interactive, many-client
workloads; this package supplies the serving layer that actually drives
such workloads against the engine:

* :class:`WorkerPool` -- one set of long-lived worker threads per database;
  all parallel execution (morsels of any query) and all query admissions
  draw from it, round-robin across active queries, so the thread count is
  bounded by the pool size no matter how many queries are in flight.
* :class:`CompileExecutor` -- the shared background thread for adaptive
  tier compilation.
* :class:`QueryScheduler` / :class:`QueryTicket` -- asynchronous
  ``submit(sql) -> ticket`` with a bounded admission queue
  (``max_pending``) and a concurrency limit (``max_concurrent``).
* :class:`Session` -- per-client execution defaults and statistics.

``Database.submit`` / ``Database.session`` / ``Database.close`` are the
user-facing entry points (see :mod:`repro.engine`).
"""

from .pool import CompileExecutor, CompileFuture, MorselSource, TaskSource, \
    WorkerPool
from .scheduler import QueryScheduler, QueryTicket, SchedulerStats, \
    TicketState
from .session import Session, SessionStats

__all__ = [
    "WorkerPool", "MorselSource", "TaskSource",
    "CompileExecutor", "CompileFuture",
    "QueryScheduler", "QueryTicket", "SchedulerStats", "TicketState",
    "Session", "SessionStats",
]
