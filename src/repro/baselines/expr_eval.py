"""Expression evaluation for the baseline engines.

Two evaluators over the same typed expression tree:

* :func:`evaluate_expression` -- scalar, one tuple at a time (Volcano),
* :func:`evaluate_expression_vectorized` -- whole columns at a time with
  numpy (the column-store baseline).
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from ..errors import ExecutionError
from ..semantics.expressions import (
    AggregateExpr,
    ArithmeticExpr,
    BetweenExpr,
    CaseExpr,
    CastExpr,
    ColumnExpr,
    ComparisonExpr,
    ExtractExpr,
    InListExpr,
    LikeExpr,
    LiteralExpr,
    LogicalExpr,
    NotExpr,
    ParameterExpr,
    TypedExpression,
    like_to_predicate,
)
from ..types import SQLType, days_to_date

_COMPARATORS = {
    "=": lambda a, b: a == b,
    "<>": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}


# --------------------------------------------------------------------------- #
# scalar (tuple-at-a-time)
# --------------------------------------------------------------------------- #
def evaluate_expression(expr: TypedExpression, row: dict, params=()):
    """Evaluate an expression against ``row``: (binding, column) -> value.

    ``params`` is the (encoded) bind-parameter vector of the execution;
    :class:`ParameterExpr` nodes index into it.
    """
    if isinstance(expr, LiteralExpr):
        return expr.value
    if isinstance(expr, ParameterExpr):
        return params[expr.index]
    if isinstance(expr, ColumnExpr):
        value = row[(expr.binding, expr.column)]
        if expr.storage_type is SQLType.DECIMAL:
            return value * 0.01
        return value
    if isinstance(expr, ArithmeticExpr):
        left = evaluate_expression(expr.left, row, params)
        right = evaluate_expression(expr.right, row, params)
        return _scalar_arithmetic(expr.operator, left, right,
                                  expr.result_type)
    if isinstance(expr, ComparisonExpr):
        return _COMPARATORS[expr.operator](
            evaluate_expression(expr.left, row, params),
            evaluate_expression(expr.right, row, params))
    if isinstance(expr, LogicalExpr):
        values = (evaluate_expression(op, row, params) for op in expr.operands)
        if expr.operator == "and":
            return all(values)
        return any(values)
    if isinstance(expr, NotExpr):
        return not evaluate_expression(expr.operand, row, params)
    if isinstance(expr, BetweenExpr):
        value = evaluate_expression(expr.expr, row, params)
        result = (evaluate_expression(expr.low, row, params) <= value
                  <= evaluate_expression(expr.high, row, params))
        return not result if expr.negated else result
    if isinstance(expr, InListExpr):
        value = evaluate_expression(expr.expr, row, params)
        result = any(value == evaluate_expression(v, row, params)
                     for v in expr.values)
        return not result if expr.negated else result
    if isinstance(expr, LikeExpr):
        predicate = like_to_predicate(expr.pattern)
        result = predicate(evaluate_expression(expr.expr, row, params))
        return not result if expr.negated else result
    if isinstance(expr, CaseExpr):
        for condition, value in expr.branches:
            if evaluate_expression(condition, row, params):
                return evaluate_expression(value, row, params)
        if expr.default is not None:
            return evaluate_expression(expr.default, row, params)
        return 0
    if isinstance(expr, ExtractExpr):
        days = evaluate_expression(expr.operand, row, params)
        date = days_to_date(int(days))
        return {"year": date.year, "month": date.month,
                "day": date.day}[expr.field_name]
    if isinstance(expr, CastExpr):
        value = evaluate_expression(expr.operand, row, params)
        if expr.result_type is SQLType.FLOAT64:
            return float(value)
        if expr.result_type in (SQLType.INT64, SQLType.DATE):
            return int(value)
        return value
    if isinstance(expr, AggregateExpr):
        raise ExecutionError("aggregates cannot be evaluated per tuple")
    raise ExecutionError(
        f"cannot evaluate expression {type(expr).__name__}")


def _scalar_arithmetic(operator: str, left, right, result_type: SQLType):
    if operator == "+":
        return left + right
    if operator == "-":
        return left - right
    if operator == "*":
        return left * right
    if operator == "/":
        if right == 0:
            raise ExecutionError("division by zero")
        if result_type is SQLType.INT64 and isinstance(left, int) \
                and isinstance(right, int):
            quotient = abs(left) // abs(right)
            return -quotient if (left < 0) != (right < 0) else quotient
        return left / right
    if operator == "%":
        if right == 0:
            raise ExecutionError("modulo by zero")
        remainder = abs(left) % abs(right)
        return -remainder if left < 0 else remainder
    raise ExecutionError(f"unknown arithmetic operator {operator!r}")


# --------------------------------------------------------------------------- #
# vectorized (column-at-a-time)
# --------------------------------------------------------------------------- #
def evaluate_expression_vectorized(expr: TypedExpression,
                                   columns: dict, num_rows: int,
                                   params=()):
    """Evaluate an expression over whole columns.

    ``columns`` maps ``(binding, column)`` to numpy arrays of length
    ``num_rows``; the result is a numpy array (or a scalar broadcastable to
    one).  ``params`` is the (encoded) bind-parameter vector of the
    execution; :class:`ParameterExpr` nodes broadcast their slot's value.
    """
    if isinstance(expr, LiteralExpr):
        if isinstance(expr.value, str):
            return np.full(num_rows, expr.value, dtype=object)
        return np.full(num_rows, expr.value)
    if isinstance(expr, ParameterExpr):
        value = params[expr.index]
        if isinstance(value, str):
            return np.full(num_rows, value, dtype=object)
        return np.full(num_rows, value)
    if isinstance(expr, ColumnExpr):
        values = columns[(expr.binding, expr.column)]
        if expr.storage_type is SQLType.DECIMAL:
            return values * 0.01
        return values
    if isinstance(expr, ArithmeticExpr):
        left = evaluate_expression_vectorized(expr.left, columns,
                                              num_rows, params)
        right = evaluate_expression_vectorized(expr.right, columns,
                                               num_rows, params)
        if expr.operator == "+":
            return left + right
        if expr.operator == "-":
            return left - right
        if expr.operator == "*":
            return left * right
        if expr.operator == "/":
            if expr.result_type is SQLType.INT64:
                return (np.sign(left) * np.sign(right)
                        * (np.abs(left) // np.abs(right))).astype(np.int64)
            return left / right
        if expr.operator == "%":
            return np.sign(left) * (np.abs(left) % np.abs(right))
    if isinstance(expr, ComparisonExpr):
        left = evaluate_expression_vectorized(expr.left, columns,
                                              num_rows, params)
        right = evaluate_expression_vectorized(expr.right, columns,
                                               num_rows, params)
        return _COMPARATORS[expr.operator](left, right)
    if isinstance(expr, LogicalExpr):
        result = None
        for operand in expr.operands:
            value = evaluate_expression_vectorized(operand, columns,
                                                   num_rows, params)
            if result is None:
                result = value
            elif expr.operator == "and":
                result = result & value
            else:
                result = result | value
        return result
    if isinstance(expr, NotExpr):
        return ~evaluate_expression_vectorized(expr.operand, columns,
                                               num_rows, params)
    if isinstance(expr, BetweenExpr):
        value = evaluate_expression_vectorized(expr.expr, columns,
                                               num_rows, params)
        low = evaluate_expression_vectorized(expr.low, columns, num_rows,
                                             params)
        high = evaluate_expression_vectorized(expr.high, columns,
                                              num_rows, params)
        result = (value >= low) & (value <= high)
        return ~result if expr.negated else result
    if isinstance(expr, InListExpr):
        value = evaluate_expression_vectorized(expr.expr, columns,
                                               num_rows, params)
        result = np.zeros(num_rows, dtype=bool)
        for candidate in expr.values:
            result |= (value == evaluate_expression_vectorized(
                candidate, columns, num_rows, params))
        return ~result if expr.negated else result
    if isinstance(expr, LikeExpr):
        predicate = like_to_predicate(expr.pattern)
        value = evaluate_expression_vectorized(expr.expr, columns,
                                               num_rows, params)
        result = np.fromiter((predicate(v) for v in value), dtype=bool,
                             count=len(value))
        return ~result if expr.negated else result
    if isinstance(expr, CaseExpr):
        result = None
        default = (evaluate_expression_vectorized(expr.default, columns,
                                                  num_rows, params)
                   if expr.default is not None else np.zeros(num_rows))
        result = default
        # Apply branches in reverse so earlier branches win.
        for condition, value in reversed(expr.branches):
            mask = evaluate_expression_vectorized(condition, columns,
                                                  num_rows, params)
            branch = evaluate_expression_vectorized(value, columns,
                                                    num_rows, params)
            result = np.where(mask, branch, result)
        return result
    if isinstance(expr, ExtractExpr):
        days = evaluate_expression_vectorized(expr.operand, columns,
                                              num_rows, params)
        dates = np.asarray(days, dtype="datetime64[D]")
        if expr.field_name == "year":
            return dates.astype("datetime64[Y]").astype(int) + 1970
        if expr.field_name == "month":
            return (dates.astype("datetime64[M]").astype(int) % 12) + 1
        months = dates.astype("datetime64[M]")
        return (dates - months).astype(int) + 1
    if isinstance(expr, CastExpr):
        value = evaluate_expression_vectorized(expr.operand, columns,
                                               num_rows, params)
        if expr.result_type is SQLType.FLOAT64:
            return np.asarray(value, dtype=np.float64)
        if expr.result_type in (SQLType.INT64, SQLType.DATE):
            return np.asarray(value, dtype=np.int64)
        return value
    if isinstance(expr, AggregateExpr):
        raise ExecutionError("aggregates are handled by the aggregation "
                             "operator, not the expression evaluator")
    raise ExecutionError(
        f"cannot vector-evaluate expression {type(expr).__name__}")
