"""Volcano-style tuple-at-a-time engine (the PostgreSQL stand-in).

Executes the same physical pipeline plans as the compiled engine, but every
tuple flows through interpreted operator logic and every expression is
re-interpreted per tuple by walking the typed expression tree.  There is no
code generation and no compilation step, which is exactly the baseline
trade-off Table I / Table II of the paper illustrate: zero preparation cost,
high per-tuple overhead.
"""

from __future__ import annotations

import heapq
import time
from dataclasses import dataclass
from typing import Iterator, Optional

from ..catalog import Catalog
from ..codegen.runtime import (
    _TopKEntry,
    group_sort_key,
    initial_cells,
    make_sort_key_fn,
    merge_agg_partition,
    merge_join_partition,
    resolve_limit,
    round_up_pow2,
)
from ..errors import ExecutionError
from ..plan.physical import (
    AggregateSink,
    HashBuildSink,
    IntermediateSource,
    OutputSink,
    PhysFilter,
    PhysHashProbe,
    Pipeline,
    PhysicalPlan,
    TableSource,
)
from ..plan.sargs import plan_pipeline_scan
from ..types import SQLType
from .expr_eval import evaluate_expression


@dataclass
class PipelineRunStats:
    """Per-pipeline observations of one baseline execution.

    The typed equivalent of the engine executors' ``PipelineExecution``
    fields the baselines can actually measure; ``Database._execute_baseline``
    converts these onto the result for EXPLAIN ANALYZE.
    """

    name: str = ""
    description: str = ""
    rows_in: int = 0
    rows_out: Optional[int] = None
    seconds: float = 0.0
    chunks_scanned: int = 0
    chunks_pruned: int = 0


class VolcanoEngine:
    """Tuple-at-a-time interpretation of pipeline plans.

    Pipeline breakers share the compiled engine's partition-parallel
    runtime: build and aggregate rows accumulate into hash-partitioned
    partials, a merge step seals the partition tables, and probes read the
    sealed partitions -- the same lifecycle the worker contexts follow,
    with a single (the calling) worker.  ``use_partitioned_breakers=False``
    is the single-table path (one partition, no separate merge step).
    """

    def __init__(self, catalog: Catalog, use_pruning: bool = True,
                 breaker_partitions: int = 1,
                 use_partitioned_breakers: bool = True,
                 use_topk_breaker: bool = True):
        self.catalog = catalog
        self.use_pruning = use_pruning
        self.use_topk_breaker = use_topk_breaker
        #: True when a LIMIT quota stopped the output scan early.
        self.early_terminated = False
        self._partitions = (round_up_pow2(breaker_partitions)
                            if use_partitioned_breakers else 1)
        self.use_partitioned_breakers = use_partitioned_breakers
        #: Zone-map pruning counters of the last execution.
        self.chunks_pruned = 0
        self.chunks_scanned = 0
        #: Breaker metrics of the last execution (`breaker_partitions_used`
        #: stays 0 until a partitioned join-build/aggregate actually runs).
        self.breaker_partitions_used = 0
        self.breaker_partial_entries = 0
        self.breaker_merge_seconds = 0.0
        #: Per-pipeline :class:`PipelineRunStats` of the last execution,
        #: consumed by EXPLAIN ANALYZE through ``Database._execute_baseline``.
        self.pipeline_stats: list[PipelineRunStats] = []
        self._current_stats: Optional[PipelineRunStats] = None
        #: Bind-parameter values of the current execution (encoded).
        self._params: tuple = ()

    # ------------------------------------------------------------------ #
    def execute(self, plan: PhysicalPlan, params=()) -> list[tuple]:
        self._params = tuple(params)
        self.early_terminated = False
        self.pipeline_stats = []
        hash_tables: dict[int, list[dict]] = {}
        intermediates: dict[str, list[dict]] = {}
        output_rows: list[tuple] = []
        output_sink: Optional[OutputSink] = None
        output_stats: Optional[PipelineRunStats] = None

        for pipeline in plan.pipelines:
            sink = pipeline.sink
            stats = PipelineRunStats(name=pipeline.name,
                                     description=pipeline.describe())
            self.pipeline_stats.append(stats)
            self._current_stats = stats
            start = time.perf_counter()
            if isinstance(sink, HashBuildSink):
                self._run_build(pipeline, sink, hash_tables, intermediates)
                stats.rows_out = sum(
                    len(bucket) for part in hash_tables[sink.join_id]
                    for bucket in part.values())
            elif isinstance(sink, AggregateSink):
                self._run_aggregate(pipeline, sink, hash_tables, intermediates)
                stats.rows_out = len(
                    intermediates[sink.intermediate.binding])
            elif isinstance(sink, OutputSink):
                output_sink = sink
                output_stats = stats
                self._run_output(pipeline, sink, hash_tables, intermediates,
                                 output_rows)
            else:  # pragma: no cover - defensive
                raise ExecutionError(f"unknown sink {type(sink).__name__}")
            stats.seconds = time.perf_counter() - start
        self._current_stats = None

        if output_sink is None:
            raise ExecutionError("plan has no output pipeline")
        rows = _finish_output(output_rows, output_sink, self._params)
        if output_stats is not None:
            output_stats.rows_out = len(rows)
        return rows

    # ------------------------------------------------------------------ #
    # row iteration
    # ------------------------------------------------------------------ #
    def _source_rows(self, pipeline: Pipeline,
                     intermediates: dict) -> Iterator[dict]:
        source = pipeline.source
        if isinstance(source, TableSource):
            table = source.table
            binding = source.binding
            names = table.schema.column_names()
            columns = [table.column_data(name) for name in names]
            keys = [(binding, name) for name in names]
            scan = plan_pipeline_scan(pipeline, table.snapshot_rows(),
                                      self._params,
                                      use_pruning=self.use_pruning)
            self.chunks_pruned += scan.chunks_pruned
            self.chunks_scanned += scan.chunks_scanned
            stats = self._current_stats
            if stats is not None:
                stats.rows_in += scan.rows_to_scan
                stats.chunks_scanned += scan.chunks_scanned
                stats.chunks_pruned += scan.chunks_pruned
            for begin, end in scan.ranges:
                for index in range(begin, end):
                    yield {key: column[index]
                           for key, column in zip(keys, columns)}
            return
        assert isinstance(source, IntermediateSource)
        rows = intermediates.get(source.binding, [])
        if self._current_stats is not None:
            self._current_stats.rows_in += len(rows)
        for row in rows:
            yield row

    def _apply_operators(self, pipeline: Pipeline, row: dict,
                         hash_tables: dict) -> Iterator[dict]:
        """Push one source row through the pipeline's streaming operators."""
        rows = [row]
        for operator in pipeline.operators:
            if isinstance(operator, PhysFilter):
                rows = [r for r in rows
                        if evaluate_expression(operator.predicate, r, self._params)]
            elif isinstance(operator, PhysHashProbe):
                joined: list[dict] = []
                parts = hash_tables[operator.join_id]
                mask = len(parts) - 1
                for current in rows:
                    key_values = tuple(evaluate_expression(k, current, self._params)
                                       for k in operator.probe_keys)
                    key = key_values[0] if len(key_values) == 1 else key_values
                    matched = False
                    for payload in parts[hash(key) & mask].get(key, ()):
                        combined = dict(current)
                        for column, value in zip(operator.payload_columns,
                                                 payload):
                            combined[(column.binding, column.column)] = value
                        if all(evaluate_expression(p, combined, self._params)
                               for p in operator.residual):
                            matched = True
                            joined.append(combined)
                    if operator.outer and not matched:
                        # LEFT OUTER JOIN: preserve the probe row once with
                        # NULL-padded build payloads.
                        combined = dict(current)
                        for column in operator.payload_columns:
                            combined[(column.binding, column.column)] = None
                        joined.append(combined)
                rows = joined
            else:  # pragma: no cover - defensive
                raise ExecutionError(
                    f"unknown operator {type(operator).__name__}")
            if not rows:
                return
        yield from rows

    # ------------------------------------------------------------------ #
    # sinks
    # ------------------------------------------------------------------ #
    def _run_build(self, pipeline: Pipeline, sink: HashBuildSink,
                   hash_tables: dict, intermediates: dict) -> None:
        count = self._partitions
        mask = count - 1
        partial: list[dict] = [{} for _ in range(count)]
        for source_row in self._source_rows(pipeline, intermediates):
            for row in self._apply_operators(pipeline, source_row,
                                             hash_tables):
                key_values = tuple(evaluate_expression(k, row, self._params)
                                   for k in sink.build_keys)
                key = key_values[0] if len(key_values) == 1 else key_values
                payload = tuple(row[(c.binding, c.column)]
                                for c in sink.payload_columns)
                partial[hash(key) & mask].setdefault(key, []).append(payload)
        if self.use_partitioned_breakers:
            self.breaker_partitions_used = count
            self.breaker_partial_entries += sum(len(p) for p in partial)
            start = time.perf_counter()
            sealed: list[dict] = [{} for _ in range(count)]
            for index in range(count):
                merge_join_partition(sealed[index], [partial[index]])
            self.breaker_merge_seconds += time.perf_counter() - start
            hash_tables[sink.join_id] = sealed
        else:
            hash_tables[sink.join_id] = partial

    def _run_aggregate(self, pipeline: Pipeline, sink: AggregateSink,
                       hash_tables: dict, intermediates: dict) -> None:
        count = self._partitions
        mask = count - 1
        partial: list[dict] = [{} for _ in range(count)]
        specs = list(sink.aggregates)
        for source_row in self._source_rows(pipeline, intermediates):
            for row in self._apply_operators(pipeline, source_row,
                                             hash_tables):
                key = tuple(evaluate_expression(g, row, self._params)
                            for g in sink.group_by)
                part = partial[hash(key) & mask]
                cells = part.get(key)
                if cells is None:
                    cells = part[key] = initial_cells(specs)
                for index, spec in enumerate(specs):
                    if spec.function == "count":
                        cells[index] += 1
                        continue
                    value = evaluate_expression(spec.argument, row, self._params)
                    if spec.function == "sum":
                        cells[index] += value
                    elif spec.function == "avg":
                        cells[index][0] += value
                        cells[index][1] += 1
                    elif spec.function == "min":
                        if cells[index] is None or value < cells[index]:
                            cells[index] = value
                    elif spec.function == "max":
                        if cells[index] is None or value > cells[index]:
                            cells[index] = value

        if self.use_partitioned_breakers:
            self.breaker_partitions_used = count
            self.breaker_partial_entries += sum(len(p) for p in partial)
            start = time.perf_counter()
            sealed: list[dict] = [{} for _ in range(count)]
            for index in range(count):
                merge_agg_partition(specs, sealed[index], [partial[index]])
            self.breaker_merge_seconds += time.perf_counter() - start
        else:
            sealed = partial

        items: list = []
        for part in sealed:
            items.extend(part.items())
        if not items and not sink.group_by:
            items.append(((), [_empty_cell(s) for s in specs]))
        if sink.group_by:
            # Ascending group-key order: deterministic unordered GROUP BY
            # results, identical across engines and partition counts.
            items.sort(key=lambda item: group_sort_key(item[0]))

        rows: list[dict] = []
        binding = sink.intermediate.binding
        for key, cells in items:
            row = {}
            for index in range(len(sink.group_by)):
                row[(binding, f"k{index}")] = key[index]
            for index, spec in enumerate(specs):
                value = cells[index]
                if spec.function == "avg":
                    value = value[0] / value[1] if value[1] else 0.0
                elif spec.function in ("min", "max") and value is None:
                    value = 0
                row[(binding, f"a{index}")] = value
            rows.append(row)
        intermediates[binding] = rows

    def _run_output(self, pipeline: Pipeline, sink: OutputSink,
                    hash_tables: dict, intermediates: dict,
                    output_rows: list) -> None:
        limit = resolve_limit(sink.limit, self._params)
        use_topk = (self.use_topk_breaker and limit is not None
                    and bool(sink.order_by) and not sink.distinct)
        early_limit = (limit if limit is not None and not sink.order_by
                       and not sink.distinct else None)
        key_fn = make_sort_key_fn(sink) if use_topk else None
        heap: list = []
        for source_row in self._source_rows(pipeline, intermediates):
            for row in self._apply_operators(pipeline, source_row,
                                             hash_tables):
                values = [evaluate_expression(expr, row, self._params)
                          for _, expr in sink.output]
                keys = [evaluate_expression(expr, row, self._params)
                        for expr, _ in sink.order_by]
                full_row = tuple(values + keys)
                if use_topk:
                    if limit == 0:
                        return
                    entry = _TopKEntry(key_fn(full_row), full_row)
                    if len(heap) < limit:
                        heapq.heappush(heap, entry)
                    elif entry.key < heap[0].key:
                        heapq.heapreplace(heap, entry)
                    continue
                output_rows.append(full_row)
                if early_limit is not None and len(output_rows) >= early_limit:
                    # LIMIT without ORDER BY: any k rows satisfy the query,
                    # so stop the scan as soon as the quota is met.
                    self.early_terminated = True
                    return
        if use_topk:
            output_rows.extend(
                entry.row for entry in sorted(heap, key=lambda e: e.key))


# --------------------------------------------------------------------------- #
def _empty_cell(spec):
    if spec.function == "count":
        return 0
    if spec.function == "avg":
        return [0.0, 0]
    if spec.function in ("min", "max"):
        return None
    return 0 if spec.result_type is SQLType.INT64 else 0.0


def _finish_output(rows: list[tuple], sink: OutputSink,
                   params: tuple = ()) -> list[tuple]:
    """Apply DISTINCT / ORDER BY / LIMIT and strip the sort-key columns.

    Ordering uses the same canonical total-order key as the compiled
    engine's finish step (:func:`make_sort_key_fn`), so tie order is
    value-determined and identical across all engines.
    """
    width = len(sink.output)
    if sink.distinct:
        seen = set()
        unique = []
        for row in rows:
            if row not in seen:
                seen.add(row)
                unique.append(row)
        rows = unique
    if sink.order_by:
        rows = sorted(rows, key=make_sort_key_fn(sink))
    limit = resolve_limit(sink.limit, params)
    if limit is not None:
        rows = rows[:limit]
    return [row[:width] for row in rows]
