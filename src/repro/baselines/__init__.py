"""Baseline execution engines used for the Table I / Table II comparisons.

* :class:`VolcanoEngine` -- tuple-at-a-time interpretation of the physical
  plan (the PostgreSQL stand-in): every expression is evaluated by walking
  the typed expression tree per tuple, which is exactly the interpretation
  overhead compilation-based engines avoid.
* :class:`VectorizedEngine` -- column-at-a-time execution over numpy arrays
  (the MonetDB stand-in): no per-query compilation, full-column kernels with
  materialised intermediates.

Both engines execute the *same* physical plans and typed expressions as the
compiled engine, so cross-engine result comparisons in the test suite check
execution strategy, not semantics.
"""

from .expr_eval import evaluate_expression, evaluate_expression_vectorized
from .volcano import VolcanoEngine
from .vectorized import VectorizedEngine

__all__ = [
    "evaluate_expression", "evaluate_expression_vectorized",
    "VolcanoEngine", "VectorizedEngine",
]
