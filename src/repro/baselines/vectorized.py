"""Column-at-a-time engine over numpy (the MonetDB stand-in).

Every operator consumes and produces whole columns: filters become boolean
masks, joins gather build-side payload columns through index arrays,
aggregation uses ``np.unique``-based grouping.  Like MonetDB there is no
per-query compilation; preparation cost is only planning.

Pipeline breakers run as **batch kernels**: the join build materialises its
key and payload columns (no per-row dict inserts), the probe matches whole
key vectors at once (factorise both sides over a shared vocabulary, sort
the build side, ``searchsorted`` the probe side, then expand matches with
``repeat``/``cumsum`` arithmetic), and GROUP BY -- including multi-key
grouping and MIN/MAX -- reduces via integer group codes, ``bincount`` and
``reduceat`` over the chunk-cached numpy columns.  ``use_batch_kernels=
False`` keeps the historical row-at-a-time dict loops for comparison (the
pipeline-breaker benchmark asserts the batch kernels' speedup against it);
results are identical, including the ascending group-key order.
"""

from __future__ import annotations

import time
from typing import Optional

import numpy as np

from ..catalog import Catalog
from ..errors import ExecutionError
from ..plan.physical import (
    AggregateSink,
    HashBuildSink,
    IntermediateSource,
    OutputSink,
    PhysFilter,
    PhysHashProbe,
    Pipeline,
    PhysicalPlan,
    TableSource,
)
from ..codegen.runtime import resolve_limit
from ..plan.sargs import plan_pipeline_scan
from ..types import SQLType
from .expr_eval import evaluate_expression_vectorized
from .volcano import PipelineRunStats, _finish_output

#: Combined group/join codes stay below this bound so the per-column
#: factor products fit comfortably in int64; larger key domains fall back
#: to the row-at-a-time path.
_MAX_CODE_DOMAIN = 1 << 62


def _has_nan(vector) -> bool:
    """Whether a float key vector contains NaN.

    ``np.unique`` over codes would collapse NaNs to one key, so NaN-bearing
    key vectors take the row-at-a-time fallback instead -- keeping the
    batch kernels output-identical to the legacy path on every input.
    (NaN *semantics* remain this engine's historical ones: NaN join keys
    never match, and the single-key legacy grouping path itself groups
    NaNs via ``np.unique``.  The dict-based engines resolve NaN keys by
    object identity, so exact cross-engine NaN-key agreement is not a
    guarantee anywhere -- see DESIGN.md.)
    """
    return vector.dtype.kind == "f" and bool(np.isnan(vector).any())


def _factorize_columns(vectors):
    """Combine one side's key columns into int64 codes (ascending order).

    Returns ``None`` when the combined key domain could overflow int64 or
    a key column contains NaN.  Codes order like the column tuples do
    (each per-column code is the rank of the value), so ``np.unique`` over
    the codes yields groups in ascending lexicographic key order.
    """
    codes = None
    domain = 1
    for vector in vectors:
        vector = np.asarray(vector)
        if _has_nan(vector):
            return None
        _, inverse, counts = np.unique(vector,
                                       return_inverse=True,
                                       return_counts=True)
        size = len(counts)
        domain *= max(size, 1)
        if domain > _MAX_CODE_DOMAIN:
            return None
        inverse = inverse.astype(np.int64).reshape(-1)
        codes = inverse if codes is None else codes * size + inverse
    return codes


def _factorize_pair(build_vectors, probe_vectors):
    """Factorize key columns over a vocabulary shared by both join sides."""
    build_codes = None
    probe_codes = None
    domain = 1
    for build, probe in zip(build_vectors, probe_vectors):
        build = np.asarray(build)
        probe = np.asarray(probe)
        if _has_nan(build) or _has_nan(probe):
            return None, None
        both = np.concatenate([build, probe]) if (len(build) or len(probe)) \
            else build
        _, inverse = np.unique(both, return_inverse=True)
        inverse = inverse.astype(np.int64).reshape(-1)
        size = int(inverse.max()) + 1 if len(inverse) else 1
        domain *= max(size, 1)
        if domain > _MAX_CODE_DOMAIN:
            return None, None
        cb = inverse[:len(build)]
        cp = inverse[len(build):]
        if build_codes is None:
            build_codes, probe_codes = cb, cp
        else:
            build_codes = build_codes * size + cb
            probe_codes = probe_codes * size + cp
    return build_codes, probe_codes


def _batch_match(build_codes, probe_codes):
    """All (probe row, build row) matches of two code vectors.

    The build side is grouped by a stable argsort (so matches keep build
    insertion order, exactly like the dict path), the probe side is matched
    via ``searchsorted`` and expanded arithmetically -- no per-row Python.
    """
    num_probe = len(probe_codes)
    empty = np.empty(0, dtype=np.int64)
    if len(build_codes) == 0 or num_probe == 0:
        return empty, empty
    unique_codes, build_inverse = np.unique(build_codes, return_inverse=True)
    build_inverse = build_inverse.reshape(-1)
    order = np.argsort(build_inverse, kind="stable")
    counts = np.bincount(build_inverse, minlength=len(unique_codes))
    starts = np.concatenate(([0], np.cumsum(counts)[:-1]))

    positions = np.searchsorted(unique_codes, probe_codes)
    clipped = np.minimum(positions, len(unique_codes) - 1)
    valid = unique_codes[clipped] == probe_codes
    match_counts = np.where(valid, counts[clipped], 0)
    total = int(match_counts.sum())
    if total == 0:
        return empty, empty
    probe_idx = np.repeat(np.arange(num_probe, dtype=np.int64), match_counts)
    out_offsets = np.cumsum(match_counts) - match_counts
    within = np.arange(total, dtype=np.int64) - np.repeat(out_offsets,
                                                          match_counts)
    build_pos = np.repeat(np.where(valid, starts[clipped], 0),
                          match_counts) + within
    return probe_idx, order[build_pos]


class VectorizedEngine:
    """Column-at-a-time execution of pipeline plans."""

    def __init__(self, catalog: Catalog, use_pruning: bool = True,
                 use_batch_kernels: bool = True,
                 use_topk_breaker: bool = True):
        self.catalog = catalog
        self.use_pruning = use_pruning
        #: ``False`` restores the historical row-at-a-time dict loops for
        #: join build/probe and grouping (benchmark reference path).
        self.use_batch_kernels = use_batch_kernels
        #: ``False`` disables the batch top-k candidate preselection for
        #: ORDER BY + LIMIT queries (sort-then-slice reference path).
        self.use_topk_breaker = use_topk_breaker
        #: True when a LIMIT quota truncated the output scan early.
        self.early_terminated = False
        #: Zone-map pruning counters of the last execution.
        self.chunks_pruned = 0
        self.chunks_scanned = 0
        #: Breaker metrics (the column engine has no partitioned hash
        #: tables; exposed for result-stats uniformity).
        self.breaker_partitions_used = 0
        self.breaker_partial_entries = 0
        self.breaker_merge_seconds = 0.0
        #: Per-pipeline :class:`PipelineRunStats` of the last execution,
        #: consumed by EXPLAIN ANALYZE through ``Database._execute_baseline``.
        self.pipeline_stats: list[PipelineRunStats] = []
        self._current_stats: Optional[PipelineRunStats] = None
        #: Bind-parameter values of the current execution (encoded).
        self._params: tuple = ()

    # ------------------------------------------------------------------ #
    def execute(self, plan: PhysicalPlan, params=()) -> list[tuple]:
        self._params = tuple(params)
        self.early_terminated = False
        self.pipeline_stats = []
        hash_tables: dict[int, tuple] = {}
        intermediates: dict[str, tuple[dict, int]] = {}
        output_rows: list[tuple] = []
        output_sink: Optional[OutputSink] = None
        output_stats: Optional[PipelineRunStats] = None

        for pipeline in plan.pipelines:
            stats = PipelineRunStats(name=pipeline.name,
                                     description=pipeline.describe())
            self.pipeline_stats.append(stats)
            self._current_stats = stats
            start = time.perf_counter()
            columns, num_rows = self._run_pipeline_body(pipeline, hash_tables,
                                                        intermediates)
            sink = pipeline.sink
            if isinstance(sink, HashBuildSink):
                hash_tables[sink.join_id] = self._build_hash_table(
                    sink, columns, num_rows)
                stats.rows_out = num_rows
            elif isinstance(sink, AggregateSink):
                intermediates[sink.intermediate.binding] = self._aggregate(
                    sink, columns, num_rows)
                stats.rows_out = intermediates[sink.intermediate.binding][1]
            elif isinstance(sink, OutputSink):
                output_sink = sink
                output_stats = stats
                self._emit_output(sink, columns, num_rows, output_rows)
            else:  # pragma: no cover - defensive
                raise ExecutionError(f"unknown sink {type(sink).__name__}")
            stats.seconds = time.perf_counter() - start
        self._current_stats = None

        if output_sink is None:
            raise ExecutionError("plan has no output pipeline")
        rows = _finish_output(output_rows, output_sink, self._params)
        if output_stats is not None:
            output_stats.rows_out = len(rows)
        return rows

    # ------------------------------------------------------------------ #
    # pipeline body: source columns + filters + probes
    # ------------------------------------------------------------------ #
    def _run_pipeline_body(self, pipeline: Pipeline, hash_tables,
                           intermediates):
        columns, num_rows = self._source_columns(pipeline, intermediates)

        for operator in pipeline.operators:
            if num_rows == 0:
                break
            if isinstance(operator, PhysFilter):
                mask = np.asarray(evaluate_expression_vectorized(
                    operator.predicate, columns, num_rows,
                    self._params), dtype=bool)
                columns = {key: values[mask]
                           for key, values in columns.items()}
                num_rows = int(mask.sum())
            elif isinstance(operator, PhysHashProbe):
                columns, num_rows = self._probe(operator, columns, num_rows,
                                                hash_tables)
            else:  # pragma: no cover - defensive
                raise ExecutionError(
                    f"unknown operator {type(operator).__name__}")
        return columns, num_rows

    def _source_columns(self, pipeline: Pipeline, intermediates):
        source = pipeline.source
        if isinstance(source, TableSource):
            table = source.table
            binding = source.binding
            names = table.schema.column_names()
            scan = plan_pipeline_scan(pipeline, table.snapshot_rows(),
                                      self._params,
                                      use_pruning=self.use_pruning)
            self.chunks_pruned += scan.chunks_pruned
            self.chunks_scanned += scan.chunks_scanned
            stats = self._current_stats
            if stats is not None:
                stats.rows_in += scan.rows_to_scan
                stats.chunks_scanned += scan.chunks_scanned
                stats.chunks_pruned += scan.chunks_pruned
            if scan.chunks_pruned == 0:
                # Full scan: use the consistent whole-column snapshot (all
                # columns sliced to one row count, cached per chunk).
                arrays, rows = table.numpy_snapshot(names)
                # The scan plan snapshotted the row count first; clamp to it
                # so the pruned/unpruned paths agree under concurrent
                # inserts.
                if rows > scan.rows_total:
                    arrays = {name: array[:scan.rows_total]
                              for name, array in arrays.items()}
                columns = {(binding, name): arrays[name] for name in names}
                return columns, scan.rows_total
            columns = {
                (binding, name): table.numpy_ranges(name, scan.ranges)
                for name in names}
            return columns, scan.rows_to_scan
        assert isinstance(source, IntermediateSource)
        stored = intermediates.get(source.binding)
        if stored is None:
            return {}, 0
        if self._current_stats is not None:
            self._current_stats.rows_in += stored[1]
        return stored

    # ------------------------------------------------------------------ #
    # hash joins
    # ------------------------------------------------------------------ #
    def _build_hash_table(self, sink: HashBuildSink, columns, num_rows):
        payload_arrays = []
        for column in sink.payload_columns:
            if num_rows == 0:
                payload_arrays.append(np.asarray([])[:0])
            else:
                payload_arrays.append(
                    np.asarray(columns[(column.binding, column.column)]))
        if num_rows == 0:
            key_vectors = [np.asarray([])[:0] for _ in sink.build_keys]
        else:
            key_vectors = [np.asarray(evaluate_expression_vectorized(
                key, columns, num_rows, self._params))
                for key in sink.build_keys]

        if self.use_batch_kernels:
            # Batch build: the "hash table" is just the materialised key
            # vectors; matching happens wholesale at probe time.
            return ("batch", (key_vectors, num_rows), payload_arrays,
                    list(sink.payload_columns))

        key_to_rows: dict = {}
        if len(key_vectors) == 1:
            keys = key_vectors[0]
            for row in range(num_rows):
                key_to_rows.setdefault(keys[row], []).append(row)
        else:
            for row in range(num_rows):
                key = tuple(vector[row] for vector in key_vectors)
                key_to_rows.setdefault(key, []).append(row)
        return ("rows", key_to_rows, payload_arrays,
                list(sink.payload_columns))

    def _probe(self, operator: PhysHashProbe, columns, num_rows, hash_tables):
        kind, keys_or_table, payload_arrays, payload_columns = \
            hash_tables[operator.join_id]
        probe_rows = num_rows

        key_vectors = [np.asarray(evaluate_expression_vectorized(
            key, columns, num_rows, self._params))
            for key in operator.probe_keys]

        if kind == "batch":
            build_vectors, build_rows = keys_or_table
            if not key_vectors:
                # Key-less (cross) join: every probe row matches every
                # build row, in build order -- like probing key ().
                probe_idx = np.repeat(np.arange(num_rows, dtype=np.int64),
                                      build_rows)
                build_idx = np.tile(np.arange(build_rows, dtype=np.int64),
                                    num_rows)
            else:
                build_codes, probe_codes = _factorize_pair(build_vectors,
                                                           key_vectors)
                if build_codes is not None:
                    probe_idx, build_idx = _batch_match(build_codes,
                                                        probe_codes)
                else:
                    # Key domain too wide for int64 codes: row-at-a-time.
                    probe_idx, build_idx = self._match_rows_fallback(
                        build_vectors, key_vectors, num_rows)
        else:
            probe_idx, build_idx = self._match_rows(keys_or_table,
                                                    key_vectors, num_rows)

        joined = {key: values[probe_idx] if len(probe_idx) else values[:0]
                  for key, values in columns.items()}
        for column, array in zip(payload_columns, payload_arrays):
            joined[(column.binding, column.column)] = (
                array[build_idx] if len(build_idx) else array[:0])
        num_rows = len(probe_idx)

        # Carry the probe index through the residual masks: the LEFT OUTER
        # complement below needs to know which probe rows survived.
        surviving = probe_idx
        for residual in operator.residual:
            if num_rows == 0:
                break
            mask = np.asarray(evaluate_expression_vectorized(
                residual, joined, num_rows, self._params), dtype=bool)
            joined = {key: values[mask] for key, values in joined.items()}
            surviving = surviving[mask] if len(surviving) else surviving
            num_rows = int(mask.sum())

        if operator.outer:
            joined, num_rows = self._outer_complement(
                columns, probe_rows, payload_columns, joined, num_rows,
                surviving)
        return joined, num_rows

    @staticmethod
    def _outer_complement(columns, probe_rows, payload_columns, joined,
                          num_rows, surviving):
        """Append NULL-padded rows for probe rows no match survived for.

        The combined rows are re-ordered by probe index (stable), so the
        output interleaves matches and preserved rows exactly like the
        tuple-at-a-time engines do.
        """
        unmatched = np.setdiff1d(np.arange(probe_rows, dtype=np.int64),
                                 surviving)
        if not len(unmatched):
            return joined, num_rows
        nulls = np.full(len(unmatched), None, dtype=object)
        for key, values in columns.items():
            tail = values[unmatched]
            joined[key] = (np.concatenate([joined[key], tail])
                           if num_rows else tail)
        for column in payload_columns:
            key = (column.binding, column.column)
            head = np.asarray(joined[key], dtype=object)
            joined[key] = np.concatenate([head, nulls]) if num_rows else nulls
        all_probe = (np.concatenate([surviving, unmatched])
                     if num_rows else unmatched)
        order = np.argsort(all_probe, kind="stable")
        joined = {key: values[order] for key, values in joined.items()}
        return joined, num_rows + len(unmatched)

    @staticmethod
    def _match_rows(key_to_rows: dict, key_vectors, num_rows):
        """Row-at-a-time probe against a build-side dict (legacy path)."""
        probe_indices: list[int] = []
        build_indices: list[int] = []
        if len(key_vectors) == 1:
            keys = key_vectors[0]
            for probe_index in range(num_rows):
                matches = key_to_rows.get(keys[probe_index])
                if matches is not None:
                    probe_indices.extend([probe_index] * len(matches))
                    build_indices.extend(matches)
        else:
            for probe_index in range(num_rows):
                key = tuple(vector[probe_index] for vector in key_vectors)
                matches = key_to_rows.get(key)
                if matches is not None:
                    probe_indices.extend([probe_index] * len(matches))
                    build_indices.extend(matches)
        return (np.asarray(probe_indices, dtype=np.int64),
                np.asarray(build_indices, dtype=np.int64))

    @classmethod
    def _match_rows_fallback(cls, build_vectors, key_vectors, num_rows):
        """Dict-based matching when batch codes would overflow."""
        key_to_rows: dict = {}
        build_rows = len(build_vectors[0]) if build_vectors else 0
        if len(build_vectors) == 1:
            keys = build_vectors[0]
            for row in range(build_rows):
                key_to_rows.setdefault(keys[row], []).append(row)
        else:
            for row in range(build_rows):
                key = tuple(vector[row] for vector in build_vectors)
                key_to_rows.setdefault(key, []).append(row)
        return cls._match_rows(key_to_rows, key_vectors, num_rows)

    # ------------------------------------------------------------------ #
    # aggregation
    # ------------------------------------------------------------------ #
    def _aggregate(self, sink: AggregateSink, columns, num_rows):
        binding = sink.intermediate.binding
        result_columns: dict = {}

        if num_rows == 0:
            if not sink.group_by:
                for index, spec in enumerate(sink.aggregates):
                    value = 0 if spec.result_type is SQLType.INT64 else 0.0
                    result_columns[(binding, f"a{index}")] = np.asarray([value])
                return result_columns, 1
            for index in range(len(sink.group_by)):
                result_columns[(binding, f"k{index}")] = np.asarray([])[:0]
            for index in range(len(sink.aggregates)):
                result_columns[(binding, f"a{index}")] = np.asarray([])[:0]
            return result_columns, 0

        group_vectors = [np.asarray(evaluate_expression_vectorized(
            expr, columns, num_rows, self._params))
            for expr in sink.group_by]
        argument_vectors = []
        for spec in sink.aggregates:
            if spec.argument is None:
                argument_vectors.append(None)
            else:
                argument_vectors.append(np.asarray(
                    evaluate_expression_vectorized(spec.argument, columns,
                                                   num_rows, self._params)))

        if sink.group_by:
            grouped = None
            if self.use_batch_kernels:
                grouped = self._group_batch(group_vectors, num_rows)
            if grouped is None:
                grouped = self._group_rows(group_vectors, num_rows)
            key_columns, inverse, num_groups = grouped
        else:
            inverse = np.zeros(num_rows, dtype=np.int64)
            key_columns = []
            num_groups = 1

        for index, key_column in enumerate(key_columns):
            result_columns[(binding, f"k{index}")] = key_column

        for index, spec in enumerate(sink.aggregates):
            argument = argument_vectors[index]
            if spec.function == "count":
                values = np.bincount(inverse, minlength=num_groups)
            elif spec.function == "sum":
                values = np.bincount(inverse,
                                     weights=np.asarray(argument,
                                                        dtype=np.float64),
                                     minlength=num_groups)
                if spec.result_type is SQLType.INT64:
                    values = values.astype(np.int64)
            elif spec.function == "avg":
                sums = np.bincount(inverse,
                                   weights=np.asarray(argument,
                                                      dtype=np.float64),
                                   minlength=num_groups)
                counts = np.bincount(inverse, minlength=num_groups)
                values = np.divide(sums, np.maximum(counts, 1))
            elif spec.function in ("min", "max"):
                values = self._min_max(spec.function, argument, inverse,
                                       num_groups)
            else:  # pragma: no cover - defensive
                raise ExecutionError(f"unknown aggregate {spec.function!r}")
            result_columns[(binding, f"a{index}")] = np.asarray(values)

        return result_columns, num_groups

    @staticmethod
    def _group_batch(group_vectors, num_rows):
        """Integer-code grouping (handles multi-key without object tuples).

        Groups come out in ascending key order (codes order like the key
        tuples), matching the deterministic finalize order of the other
        engines.  Returns ``None`` when the key domain could overflow.
        """
        codes = _factorize_columns(group_vectors)
        if codes is None:
            return None
        _, first_index, inverse = np.unique(codes, return_index=True,
                                            return_inverse=True)
        inverse = inverse.astype(np.int64).reshape(-1)
        key_columns = [np.asarray(vector)[first_index]
                       for vector in group_vectors]
        return key_columns, inverse, len(first_index)

    @staticmethod
    def _group_rows(group_vectors, num_rows):
        """Row-at-a-time grouping over object tuples (legacy path)."""
        if len(group_vectors) == 1:
            unique_keys, inverse = np.unique(group_vectors[0],
                                             return_inverse=True)
            key_columns = [unique_keys]
        else:
            stacked = np.empty(num_rows, dtype=object)
            for row in range(num_rows):
                stacked[row] = tuple(v[row] for v in group_vectors)
            unique_keys, inverse = np.unique(stacked, return_inverse=True)
            key_columns = []
            for position in range(len(group_vectors)):
                key_columns.append(np.asarray(
                    [key[position] for key in unique_keys], dtype=object))
        return key_columns, inverse.astype(np.int64).reshape(-1), \
            len(unique_keys)

    def _min_max(self, function: str, argument, inverse, num_groups):
        argument = np.asarray(argument)
        # NaN arguments take the row loop: ``reduceat`` would propagate NaN
        # while Python's min/max keeps the first non-NaN comparison winner.
        if self.use_batch_kernels and argument.dtype != object \
                and not _has_nan(argument):
            # Scatter-free reduction: sort rows by group, reduce each
            # contiguous segment (every group has at least one member).
            order = np.argsort(inverse, kind="stable")
            sorted_values = argument[order]
            counts = np.bincount(inverse, minlength=num_groups)
            starts = np.concatenate(([0], np.cumsum(counts)[:-1]))
            reducer = np.minimum if function == "min" else np.maximum
            return reducer.reduceat(sorted_values, starts)
        values = np.empty(num_groups, dtype=object)
        reducer = min if function == "min" else max
        for group in range(num_groups):
            members = argument[inverse == group]
            values[group] = reducer(members) if len(members) else 0
        return values

    # ------------------------------------------------------------------ #
    def _emit_output(self, sink: OutputSink, columns, num_rows, output_rows):
        if num_rows == 0:
            return
        vectors = [np.asarray(evaluate_expression_vectorized(
            expr, columns, num_rows, self._params))
            for _, expr in sink.output]
        vectors += [np.asarray(evaluate_expression_vectorized(
            expr, columns, num_rows, self._params))
            for expr, _ in sink.order_by]

        limit = resolve_limit(sink.limit, self._params)
        if limit is not None and not sink.distinct:
            if not sink.order_by:
                # LIMIT without ORDER BY: any k rows satisfy the query, so
                # truncate before the per-row materialisation loop.
                remaining = max(limit - len(output_rows), 0)
                if remaining < num_rows:
                    self.early_terminated = True
                    vectors = [vector[:remaining] for vector in vectors]
                    num_rows = remaining
            elif self.use_topk_breaker and 0 < limit < num_rows:
                selected = self._topk_candidates(sink, vectors, num_rows,
                                                 limit)
                if selected is not None:
                    vectors = [vector[selected] for vector in vectors]
                    num_rows = len(selected)

        for row in range(num_rows):
            output_rows.append(tuple(_to_python(vector[row])
                                     for vector in vectors))

    @staticmethod
    def _topk_candidates(sink: OutputSink, vectors, num_rows, limit):
        """Indices of a provably sufficient ORDER BY + LIMIT candidate set.

        Each sort-key vector is factorised to integer ranks (exact for any
        sortable dtype; descending keys negate the rank), the rows are
        lexsorted on the ranks, and the candidate set is the first ``limit``
        rows plus every row tying the boundary row on the full key tuple --
        the final canonical sort in ``_finish_output`` resolves those ties
        by whole-row comparison, and every row it could pick is in the set.
        Returns ``None`` (no preselection) for NaN-bearing or object-typed
        keys, where rank factorisation is not order-faithful.
        """
        width = len(sink.output)
        keys = []
        for offset, (_, ascending) in enumerate(sink.order_by):
            vector = np.asarray(vectors[width + offset])
            if vector.dtype == object or _has_nan(vector):
                return None
            _, codes = np.unique(vector, return_inverse=True)
            codes = codes.astype(np.int64).reshape(-1)
            keys.append(codes if ascending else -codes)
        order = np.lexsort(keys[::-1])  # last lexsort key is primary
        boundary = order[limit - 1]
        tie = np.ones(num_rows, dtype=bool)
        for codes in keys:
            tie &= codes == codes[boundary]
        return np.unique(np.concatenate([order[:limit], np.nonzero(tie)[0]]))


def _to_python(value):
    """Convert numpy scalars to plain Python values for result comparison."""
    if isinstance(value, np.generic):
        return value.item()
    return value
