"""Column-at-a-time engine over numpy (the MonetDB stand-in).

Every operator consumes and produces whole columns: filters become boolean
masks, joins gather build-side payload columns through index arrays,
aggregation uses ``np.unique``-based grouping.  Like MonetDB there is no
per-query compilation; preparation cost is only planning.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..catalog import Catalog
from ..errors import ExecutionError
from ..plan.physical import (
    AggregateSink,
    HashBuildSink,
    IntermediateSource,
    OutputSink,
    PhysFilter,
    PhysHashProbe,
    Pipeline,
    PhysicalPlan,
    TableSource,
)
from ..plan.sargs import plan_pipeline_scan
from ..types import SQLType
from .expr_eval import evaluate_expression_vectorized
from .volcano import _finish_output


class VectorizedEngine:
    """Column-at-a-time execution of pipeline plans."""

    def __init__(self, catalog: Catalog, use_pruning: bool = True):
        self.catalog = catalog
        self.use_pruning = use_pruning
        #: Zone-map pruning counters of the last execution.
        self.chunks_pruned = 0
        self.chunks_scanned = 0
        #: Bind-parameter values of the current execution (encoded).
        self._params: tuple = ()

    # ------------------------------------------------------------------ #
    def execute(self, plan: PhysicalPlan, params=()) -> list[tuple]:
        self._params = tuple(params)
        hash_tables: dict[int, tuple[dict, list[np.ndarray], list]] = {}
        intermediates: dict[str, tuple[dict, int]] = {}
        output_rows: list[tuple] = []
        output_sink: Optional[OutputSink] = None

        for pipeline in plan.pipelines:
            columns, num_rows = self._run_pipeline_body(pipeline, hash_tables,
                                                        intermediates)
            sink = pipeline.sink
            if isinstance(sink, HashBuildSink):
                hash_tables[sink.join_id] = self._build_hash_table(
                    sink, columns, num_rows)
            elif isinstance(sink, AggregateSink):
                intermediates[sink.intermediate.binding] = self._aggregate(
                    sink, columns, num_rows)
            elif isinstance(sink, OutputSink):
                output_sink = sink
                self._emit_output(sink, columns, num_rows, output_rows)
            else:  # pragma: no cover - defensive
                raise ExecutionError(f"unknown sink {type(sink).__name__}")

        if output_sink is None:
            raise ExecutionError("plan has no output pipeline")
        return _finish_output(output_rows, output_sink)

    # ------------------------------------------------------------------ #
    # pipeline body: source columns + filters + probes
    # ------------------------------------------------------------------ #
    def _run_pipeline_body(self, pipeline: Pipeline, hash_tables,
                           intermediates):
        columns, num_rows = self._source_columns(pipeline, intermediates)

        for operator in pipeline.operators:
            if num_rows == 0:
                break
            if isinstance(operator, PhysFilter):
                mask = np.asarray(evaluate_expression_vectorized(
                    operator.predicate, columns, num_rows,
                    self._params), dtype=bool)
                columns = {key: values[mask]
                           for key, values in columns.items()}
                num_rows = int(mask.sum())
            elif isinstance(operator, PhysHashProbe):
                columns, num_rows = self._probe(operator, columns, num_rows,
                                                hash_tables)
            else:  # pragma: no cover - defensive
                raise ExecutionError(
                    f"unknown operator {type(operator).__name__}")
        return columns, num_rows

    def _source_columns(self, pipeline: Pipeline, intermediates):
        source = pipeline.source
        if isinstance(source, TableSource):
            table = source.table
            binding = source.binding
            names = table.schema.column_names()
            scan = plan_pipeline_scan(pipeline, table.snapshot_rows(),
                                      self._params,
                                      use_pruning=self.use_pruning)
            self.chunks_pruned += scan.chunks_pruned
            self.chunks_scanned += scan.chunks_scanned
            if scan.chunks_pruned == 0:
                # Full scan: use the consistent whole-column snapshot (all
                # columns sliced to one row count, cached per chunk).
                arrays, rows = table.numpy_snapshot(names)
                # The scan plan snapshotted the row count first; clamp to it
                # so the pruned/unpruned paths agree under concurrent
                # inserts.
                if rows > scan.rows_total:
                    arrays = {name: array[:scan.rows_total]
                              for name, array in arrays.items()}
                columns = {(binding, name): arrays[name] for name in names}
                return columns, scan.rows_total
            columns = {
                (binding, name): table.numpy_ranges(name, scan.ranges)
                for name in names}
            return columns, scan.rows_to_scan
        assert isinstance(source, IntermediateSource)
        stored = intermediates.get(source.binding)
        if stored is None:
            return {}, 0
        return stored

    # ------------------------------------------------------------------ #
    def _probe(self, operator: PhysHashProbe, columns, num_rows, hash_tables):
        key_to_rows, payload_arrays, payload_columns = \
            hash_tables[operator.join_id]

        key_vectors = [np.asarray(evaluate_expression_vectorized(
            key, columns, num_rows, self._params))
            for key in operator.probe_keys]

        probe_indices: list[int] = []
        build_indices: list[int] = []
        if len(key_vectors) == 1:
            keys = key_vectors[0]
            for probe_index in range(num_rows):
                matches = key_to_rows.get(keys[probe_index])
                if matches is not None:
                    probe_indices.extend([probe_index] * len(matches))
                    build_indices.extend(matches)
        else:
            for probe_index in range(num_rows):
                key = tuple(vector[probe_index] for vector in key_vectors)
                matches = key_to_rows.get(key)
                if matches is not None:
                    probe_indices.extend([probe_index] * len(matches))
                    build_indices.extend(matches)

        probe_idx = np.asarray(probe_indices, dtype=np.int64)
        build_idx = np.asarray(build_indices, dtype=np.int64)

        joined = {key: values[probe_idx] if len(probe_idx) else values[:0]
                  for key, values in columns.items()}
        for column, array in zip(payload_columns, payload_arrays):
            joined[(column.binding, column.column)] = (
                array[build_idx] if len(build_idx) else array[:0])
        num_rows = len(probe_idx)

        for residual in operator.residual:
            if num_rows == 0:
                break
            mask = np.asarray(evaluate_expression_vectorized(
                residual, joined, num_rows, self._params), dtype=bool)
            joined = {key: values[mask] for key, values in joined.items()}
            num_rows = int(mask.sum())
        return joined, num_rows

    def _build_hash_table(self, sink: HashBuildSink, columns, num_rows):
        if num_rows == 0:
            empty = [np.asarray([])[:0] for _ in sink.payload_columns]
            return {}, empty, list(sink.payload_columns)
        key_vectors = [np.asarray(evaluate_expression_vectorized(
            key, columns, num_rows, self._params))
            for key in sink.build_keys]
        payload_arrays = []
        for column in sink.payload_columns:
            values = columns[(column.binding, column.column)]
            payload_arrays.append(np.asarray(values))

        key_to_rows: dict = {}
        if len(key_vectors) == 1:
            keys = key_vectors[0]
            for row in range(num_rows):
                key_to_rows.setdefault(keys[row], []).append(row)
        else:
            for row in range(num_rows):
                key = tuple(vector[row] for vector in key_vectors)
                key_to_rows.setdefault(key, []).append(row)
        return key_to_rows, payload_arrays, list(sink.payload_columns)

    # ------------------------------------------------------------------ #
    def _aggregate(self, sink: AggregateSink, columns, num_rows):
        binding = sink.intermediate.binding
        result_columns: dict = {}

        if num_rows == 0:
            if not sink.group_by:
                for index, spec in enumerate(sink.aggregates):
                    value = 0 if spec.result_type is SQLType.INT64 else 0.0
                    result_columns[(binding, f"a{index}")] = np.asarray([value])
                return result_columns, 1
            for index in range(len(sink.group_by)):
                result_columns[(binding, f"k{index}")] = np.asarray([])[:0]
            for index in range(len(sink.aggregates)):
                result_columns[(binding, f"a{index}")] = np.asarray([])[:0]
            return result_columns, 0

        group_vectors = [np.asarray(evaluate_expression_vectorized(
            expr, columns, num_rows, self._params))
            for expr in sink.group_by]
        argument_vectors = []
        for spec in sink.aggregates:
            if spec.argument is None:
                argument_vectors.append(None)
            else:
                argument_vectors.append(np.asarray(
                    evaluate_expression_vectorized(spec.argument, columns,
                                                   num_rows, self._params)))

        if sink.group_by:
            # Group via np.unique over a structured key.
            if len(group_vectors) == 1:
                unique_keys, inverse = np.unique(group_vectors[0],
                                                 return_inverse=True)
                key_columns = [unique_keys]
            else:
                stacked = np.empty(num_rows, dtype=object)
                for row in range(num_rows):
                    stacked[row] = tuple(v[row] for v in group_vectors)
                unique_keys, inverse = np.unique(stacked, return_inverse=True)
                key_columns = []
                for position in range(len(group_vectors)):
                    key_columns.append(np.asarray(
                        [key[position] for key in unique_keys], dtype=object))
            num_groups = len(unique_keys)
        else:
            inverse = np.zeros(num_rows, dtype=np.int64)
            key_columns = []
            num_groups = 1

        for index, key_column in enumerate(key_columns):
            result_columns[(binding, f"k{index}")] = key_column

        for index, spec in enumerate(sink.aggregates):
            argument = argument_vectors[index]
            if spec.function == "count":
                values = np.bincount(inverse, minlength=num_groups)
            elif spec.function == "sum":
                values = np.bincount(inverse,
                                     weights=np.asarray(argument,
                                                        dtype=np.float64),
                                     minlength=num_groups)
                if spec.result_type is SQLType.INT64:
                    values = values.astype(np.int64)
            elif spec.function == "avg":
                sums = np.bincount(inverse,
                                   weights=np.asarray(argument,
                                                      dtype=np.float64),
                                   minlength=num_groups)
                counts = np.bincount(inverse, minlength=num_groups)
                values = np.divide(sums, np.maximum(counts, 1))
            elif spec.function in ("min", "max"):
                values = np.empty(num_groups, dtype=object)
                reducer = min if spec.function == "min" else max
                for group in range(num_groups):
                    members = argument[inverse == group]
                    values[group] = reducer(members) if len(members) else 0
            else:  # pragma: no cover - defensive
                raise ExecutionError(f"unknown aggregate {spec.function!r}")
            result_columns[(binding, f"a{index}")] = np.asarray(values)

        return result_columns, num_groups

    # ------------------------------------------------------------------ #
    def _emit_output(self, sink: OutputSink, columns, num_rows, output_rows):
        if num_rows == 0:
            return
        vectors = [np.asarray(evaluate_expression_vectorized(
            expr, columns, num_rows, self._params))
            for _, expr in sink.output]
        vectors += [np.asarray(evaluate_expression_vectorized(
            expr, columns, num_rows, self._params))
            for expr, _ in sink.order_by]
        for row in range(num_rows):
            output_rows.append(tuple(_to_python(vector[row])
                                     for vector in vectors))


def _to_python(value):
    """Convert numpy scalars to plain Python values for result comparison."""
    if isinstance(value, np.generic):
        return value.item()
    return value
