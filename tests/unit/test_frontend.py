"""Unit tests for the SQL front end: lexer, parser, binder, catalog."""

import datetime as dt

import pytest

from repro import Database, SQLType
from repro.catalog import Catalog
from repro.errors import BindError, CatalogError, LexerError, ParserError
from repro.semantics import Binder
from repro.semantics.expressions import (
    AggregateExpr,
    ColumnExpr,
    ComparisonExpr,
    LikeExpr,
    LiteralExpr,
    collect_aggregates,
)
from repro.sqlparser import ast, parse, tokenize
from repro.sqlparser.lexer import TokenType
from repro.types import date_to_days


class TestLexer:
    def test_keywords_and_identifiers(self):
        tokens = tokenize("SELECT foo FROM bar")
        kinds = [t.type for t in tokens]
        assert kinds[:4] == [TokenType.KEYWORD, TokenType.IDENTIFIER,
                             TokenType.KEYWORD, TokenType.IDENTIFIER]

    def test_case_insensitive(self):
        assert tokenize("SeLeCt")[0].value == "select"

    def test_numbers(self):
        tokens = tokenize("1 2.5 3e2")
        assert [t.type for t in tokens[:3]] == [TokenType.INTEGER,
                                                TokenType.FLOAT,
                                                TokenType.FLOAT]

    def test_string_with_escaped_quote(self):
        token = tokenize("'it''s'")[0]
        assert token.value == "it's"

    def test_comments_skipped(self):
        tokens = tokenize("select -- comment\n 1 /* block */ + 2")
        values = [t.value for t in tokens if t.type is not TokenType.END]
        assert values == ["select", "1", "+", "2"]

    def test_unterminated_string(self):
        with pytest.raises(LexerError):
            tokenize("'oops")

    def test_operators(self):
        values = [t.value for t in tokenize("a <> b >= c <= d != e")
                  if t.type is TokenType.OPERATOR]
        assert values == ["<>", ">=", "<=", "!="]


class TestParser:
    def test_simple_select(self):
        stmt = parse("select a, b from t")
        assert len(stmt.select_items) == 2
        assert stmt.from_tables[0].table == "t"

    def test_star(self):
        stmt = parse("select * from t")
        assert stmt.select_items[0].is_star

    def test_aliases(self):
        stmt = parse("select a as x, b y from t z")
        assert stmt.select_items[0].alias == "x"
        assert stmt.select_items[1].alias == "y"
        assert stmt.from_tables[0].alias == "z"

    def test_where_precedence(self):
        stmt = parse("select a from t where a = 1 or b = 2 and c = 3")
        # AND binds tighter than OR.
        assert isinstance(stmt.where, ast.BinaryOp)
        assert stmt.where.operator == "or"

    def test_arithmetic_precedence(self):
        stmt = parse("select a + b * c from t")
        expr = stmt.select_items[0].expr
        assert isinstance(expr, ast.BinaryOp) and expr.operator == "+"
        assert isinstance(expr.right, ast.BinaryOp)
        assert expr.right.operator == "*"

    def test_group_by_having_order_limit(self):
        stmt = parse("select a, sum(b) from t group by a having sum(b) > 5 "
                     "order by 2 desc limit 7")
        assert len(stmt.group_by) == 1
        assert stmt.having is not None
        assert stmt.order_by[0].ascending is False
        assert stmt.limit == 7

    def test_joins(self):
        stmt = parse("select * from a join b on a.x = b.y "
                     "inner join c on b.z = c.w")
        assert len(stmt.joins) == 2

    def test_between_in_like(self):
        stmt = parse("select a from t where a between 1 and 2 "
                     "and b in (1, 2, 3) and c like 'x%' "
                     "and d not like '%y'")
        assert stmt.where is not None

    def test_date_and_interval(self):
        stmt = parse("select a from t where d >= date '1995-01-01' "
                     "+ interval '1' year")
        assert stmt.where is not None

    def test_case_expression(self):
        stmt = parse("select case when a > 1 then 2 else 3 end from t")
        assert isinstance(stmt.select_items[0].expr, ast.CaseWhen)

    def test_count_star_and_distinct(self):
        stmt = parse("select count(*), count(distinct a) from t")
        first = stmt.select_items[0].expr
        second = stmt.select_items[1].expr
        assert first.is_star
        assert second.distinct

    def test_extract(self):
        stmt = parse("select extract(year from d) from t")
        assert isinstance(stmt.select_items[0].expr, ast.Extract)

    def test_trailing_garbage_rejected(self):
        with pytest.raises(ParserError):
            parse("select a from t nonsense nonsense")

    def test_missing_from_expression(self):
        with pytest.raises(ParserError):
            parse("select from t")


class TestCatalog:
    def test_create_and_lookup(self):
        catalog = Catalog()
        catalog.create_table("t", [("a", SQLType.INT64)])
        assert catalog.has_table("T")
        assert catalog.table("t").schema.column("a").sql_type is SQLType.INT64

    def test_duplicate_table_rejected(self):
        catalog = Catalog()
        catalog.create_table("t", [("a", SQLType.INT64)])
        with pytest.raises(CatalogError):
            catalog.create_table("T", [("a", SQLType.INT64)])

    def test_row_width_checked(self):
        catalog = Catalog()
        table = catalog.create_table("t", [("a", SQLType.INT64),
                                           ("b", SQLType.INT64)])
        with pytest.raises(CatalogError):
            table.insert_rows([(1,)])

    def test_statistics(self):
        catalog = Catalog()
        table = catalog.create_table("t", [("a", SQLType.INT64)])
        table.insert_rows([(i % 10,) for i in range(100)])
        stats = catalog.statistics("t")
        assert stats.num_rows == 100
        assert stats.column("a").num_distinct == 10
        assert stats.column("a").min_value == 0
        assert stats.column("a").max_value == 9

    def test_decimal_encoding_roundtrip(self):
        catalog = Catalog()
        table = catalog.create_table("t", [("p", SQLType.DECIMAL)])
        table.insert_rows([(1.25,)])
        assert table.column_data("p") == [125]
        assert table.row(0, decode=True) == (1.25,)

    def test_drop_table(self):
        catalog = Catalog()
        catalog.create_table("t", [("a", SQLType.INT64)])
        catalog.drop_table("t")
        assert not catalog.has_table("t")


class TestBinder:
    @pytest.fixture()
    def catalog(self):
        db = Database()
        db.create_table("orders", [("o_id", SQLType.INT64),
                                   ("o_price", SQLType.DECIMAL),
                                   ("o_date", SQLType.DATE),
                                   ("o_status", SQLType.STRING)])
        db.create_table("items", [("i_order", SQLType.INT64),
                                  ("i_qty", SQLType.INT64)])
        return db.catalog

    def bind(self, catalog, sql):
        return Binder(catalog).bind(parse(sql))

    def test_resolves_unqualified_columns(self, catalog):
        bound = self.bind(catalog, "select o_id from orders")
        assert isinstance(bound.output[0].expr, ColumnExpr)
        assert bound.output[0].expr.binding == "orders"

    def test_unknown_column_rejected(self, catalog):
        with pytest.raises(BindError):
            self.bind(catalog, "select nope from orders")

    def test_unknown_table_rejected(self, catalog):
        with pytest.raises(BindError):
            self.bind(catalog, "select 1 from nowhere")

    def test_ambiguous_column_rejected(self, catalog):
        db = Database()
        db.create_table("a", [("x", SQLType.INT64)])
        db.create_table("b", [("x", SQLType.INT64)])
        with pytest.raises(BindError):
            Binder(db.catalog).bind(parse("select x from a, b"))

    def test_decimal_promoted_to_float(self, catalog):
        bound = self.bind(catalog, "select o_price * 2 from orders")
        assert bound.output[0].expr.result_type is SQLType.FLOAT64

    def test_date_literal_coercion(self, catalog):
        bound = self.bind(catalog,
                          "select o_id from orders where o_date < '1995-06-01'")
        predicate = bound.predicates[0]
        assert isinstance(predicate, ComparisonExpr)
        assert predicate.right.value == date_to_days("1995-06-01")

    def test_interval_folding(self, catalog):
        bound = self.bind(
            catalog, "select o_id from orders where "
                     "o_date < date '1995-01-01' + interval '2' month")
        predicate = bound.predicates[0]
        assert predicate.right.value == date_to_days("1995-03-01")

    def test_aggregate_detection(self, catalog):
        bound = self.bind(catalog,
                          "select sum(o_price), count(*) from orders")
        assert bound.has_aggregation
        aggregates = collect_aggregates(bound.output[0].expr)
        assert aggregates[0].function == "sum"

    def test_group_by_validation(self, catalog):
        with pytest.raises(BindError):
            self.bind(catalog,
                      "select o_status, o_id from orders group by o_status")

    def test_having_without_group_rejected(self, catalog):
        with pytest.raises(BindError):
            self.bind(catalog, "select o_id from orders having o_id > 1")

    def test_aggregate_in_where_rejected(self, catalog):
        with pytest.raises(BindError):
            self.bind(catalog,
                      "select o_id from orders where sum(o_price) > 10")

    def test_like_requires_string(self, catalog):
        with pytest.raises(BindError):
            self.bind(catalog, "select o_id from orders where o_id like 'x%'")

    def test_order_by_output_alias(self, catalog):
        bound = self.bind(catalog, "select sum(o_price) as total from orders "
                                   "order by total desc")
        assert isinstance(bound.order_by[0][0], AggregateExpr)

    def test_join_predicates_collected(self, catalog):
        bound = self.bind(catalog,
                          "select o_id from orders join items on o_id = i_order")
        assert len(bound.predicates) == 1
