"""Unit tests for the parameterized statement API.

Covers placeholder lexing/parsing, binder type inference, execution-time
value binding (arity / names / NULL / conversions), auto-parameterization,
the unified ExecOptions, and the satellite ergonomics (drop_table,
QueryResult iteration / columns()).
"""

from __future__ import annotations

import datetime as dt

import pytest

from repro import (
    Database,
    ExecOptions,
    ParameterError,
    SQLType,
    auto_parameterize_sql,
    normalize_sql,
)
from repro.errors import ExecutionError, ParserError, SchedulerError
from repro.parameters import ParameterSpec, bind_parameter_values
from repro.semantics import Binder
from repro.semantics.expressions import ParameterExpr
from repro.sqlparser import parse


@pytest.fixture()
def db() -> Database:
    database = Database()
    database.create_table("t", [("a", SQLType.INT64),
                                ("f", SQLType.FLOAT64),
                                ("dec", SQLType.DECIMAL),
                                ("s", SQLType.STRING),
                                ("d", SQLType.DATE),
                                ("flag", SQLType.BOOL)])
    database.insert("t", [
        (i, i * 0.5, i * 1.25, f"name-{i % 4}",
         dt.date(2021, 1, 1) + dt.timedelta(days=i), i % 2 == 0)
        for i in range(1, 41)])
    return database


def bind(db, sql, hints=None):
    return Binder(db.catalog).bind(parse(sql), parameter_hints=hints)


# --------------------------------------------------------------------------- #
# parsing
# --------------------------------------------------------------------------- #
class TestParsing:
    def test_positional_slots_in_lexical_order(self):
        statement = parse("select a from t where a > ? and a < ?")
        assert statement.parameters == [None, None]

    def test_named_slots_reuse_by_name(self):
        statement = parse(
            "select a from t where a > :lo and a < :hi and a <> :lo")
        assert statement.parameters == ["lo", "hi"]

    def test_mixing_positional_and_named_rejected(self):
        with pytest.raises(ParserError, match="cannot mix"):
            parse("select a from t where a > ? and a < :hi")
        with pytest.raises(ParserError, match="cannot mix"):
            parse("select a from t where a > :lo and a < ?")

    def test_normalize_preserves_placeholders(self):
        key1 = normalize_sql("SELECT a FROM t WHERE a = ?")
        key2 = normalize_sql("select a  from t where a = ?")
        assert key1 == key2
        assert "?" in key1


# --------------------------------------------------------------------------- #
# binder type inference
# --------------------------------------------------------------------------- #
class TestTypeInference:
    def test_comparison_with_column(self, db):
        bound = bind(db, "select a from t where a = ?")
        assert [spec.sql_type for spec in bound.parameters] == [SQLType.INT64]

    def test_named_parameter_one_spec_many_uses(self, db):
        bound = bind(db, "select a from t where a > :k or a < :k")
        assert len(bound.parameters) == 1
        assert bound.parameters[0].name == "k"
        assert bound.parameters[0].sql_type is SQLType.INT64

    def test_between_and_in_list(self, db):
        bound = bind(db, "select a from t where a between ? and ? "
                         "and s in (?, ?)")
        assert [spec.sql_type for spec in bound.parameters] == [
            SQLType.INT64, SQLType.INT64, SQLType.STRING, SQLType.STRING]

    def test_date_and_float_and_decimal_contexts(self, db):
        bound = bind(db, "select a from t where d >= ? and f < ? and dec > ?")
        # DECIMAL columns surface as FLOAT64 at the expression level.
        assert [spec.sql_type for spec in bound.parameters] == [
            SQLType.DATE, SQLType.FLOAT64, SQLType.FLOAT64]

    def test_function_contexts(self, db):
        bound = bind(db, "select a from t where year(?) = 2021 "
                         "and extract(month from ?) = 3 and ? like 'x%'")
        assert [spec.sql_type for spec in bound.parameters] == [
            SQLType.DATE, SQLType.DATE, SQLType.STRING]

    def test_cast_context(self, db):
        bound = bind(db, "select cast(? as float) as x from t")
        assert bound.parameters[0].sql_type is SQLType.FLOAT64

    def test_boolean_context(self, db):
        bound = bind(db, "select a from t where ?")
        assert bound.parameters[0].sql_type is SQLType.BOOL

    def test_arithmetic_with_column(self, db):
        bound = bind(db, "select a + ? as x from t")
        assert bound.parameters[0].sql_type is SQLType.INT64

    def test_untypeable_select_item(self, db):
        with pytest.raises(ParameterError, match="cannot infer"):
            bind(db, "select ? as x from t")

    def test_untypeable_pair(self, db):
        with pytest.raises(ParameterError, match="cannot infer"):
            bind(db, "select a from t where ? = ?")

    def test_conflicting_named_uses(self, db):
        with pytest.raises(ParameterError, match="used both as"):
            bind(db, "select a from t where a = :x and s = :x")

    def test_aggregate_argument_needs_type(self, db):
        with pytest.raises(ParameterError, match="cannot infer"):
            bind(db, "select sum(?) as x from t")

    def test_hints_seed_types(self, db):
        bound = bind(db, "select ? as x from t where a > ?", hints=[1.5, 7])
        assert bound.parameters[0].sql_type is SQLType.FLOAT64
        assert bound.parameters[1].sql_type is SQLType.INT64

    def test_hinted_string_coerces_to_date(self, db):
        bound = bind(db, "select a from t where d >= ?",
                     hints=["2021-02-01"])
        assert bound.parameters[0].sql_type is SQLType.DATE
        # The hint is encoded (epoch days) for cardinality estimation.
        nodes = [expr for pred in bound.predicates for expr in pred.walk()
                 if isinstance(expr, ParameterExpr)]
        assert nodes and all(isinstance(node.hint, int) for node in nodes)

    def test_hinted_int_promotes_against_float_column(self, db):
        bound = bind(db, "select a from t where f > ?", hints=[3])
        assert bound.parameters[0].sql_type is SQLType.FLOAT64


# --------------------------------------------------------------------------- #
# value binding
# --------------------------------------------------------------------------- #
class TestValueBinding:
    POS = [ParameterSpec(0, SQLType.INT64), ParameterSpec(1, SQLType.STRING)]
    NAMED = [ParameterSpec(0, SQLType.INT64, name="lo"),
             ParameterSpec(1, SQLType.INT64, name="hi")]

    def test_positional_ok(self):
        assert bind_parameter_values(self.POS, (3, "x")) == [3, "x"]

    def test_arity_mismatch(self):
        with pytest.raises(ParameterError, match="expects 2 parameter"):
            bind_parameter_values(self.POS, (3,))
        with pytest.raises(ParameterError, match="got none"):
            bind_parameter_values(self.POS, None)
        with pytest.raises(ParameterError, match="takes no parameters"):
            bind_parameter_values([], (1,))

    def test_positional_rejects_mapping_and_scalars(self):
        with pytest.raises(ParameterError, match="positional"):
            bind_parameter_values(self.POS, {"a": 1, "b": 2})
        with pytest.raises(ParameterError, match="sequence"):
            bind_parameter_values(self.POS, 3)

    def test_named_ok_and_case_insensitive(self):
        values = bind_parameter_values(self.NAMED, {"LO": 1, "hi": 2})
        assert values == [1, 2]

    def test_named_mismatches(self):
        with pytest.raises(ParameterError, match="missing.*hi"):
            bind_parameter_values(self.NAMED, {"lo": 1})
        with pytest.raises(ParameterError, match="unknown.*typo"):
            bind_parameter_values(self.NAMED, {"lo": 1, "hi": 2, "typo": 3})
        with pytest.raises(ParameterError, match="mapping"):
            bind_parameter_values(self.NAMED, (1, 2))

    def test_null_rejected(self):
        with pytest.raises(ParameterError, match="NULL"):
            bind_parameter_values(self.POS, (None, "x"))

    def test_conversions(self):
        spec = [ParameterSpec(0, SQLType.DATE)]
        days = bind_parameter_values(spec, (dt.date(2021, 3, 1),))[0]
        assert days == bind_parameter_values(spec, ("2021-03-01",))[0]
        assert bind_parameter_values([ParameterSpec(0, SQLType.INT64)],
                                     (4.0,)) == [4]
        assert bind_parameter_values([ParameterSpec(0, SQLType.BOOL)],
                                     (True,)) == [1]

    def test_lossy_conversions_rejected(self):
        with pytest.raises(ParameterError, match="integer"):
            bind_parameter_values([ParameterSpec(0, SQLType.INT64)], (4.5,))
        with pytest.raises(ParameterError, match="number"):
            bind_parameter_values([ParameterSpec(0, SQLType.FLOAT64)],
                                  ("oops",))
        with pytest.raises(ParameterError, match="ISO date"):
            bind_parameter_values([ParameterSpec(0, SQLType.DATE)],
                                  ("not-a-date",))


# --------------------------------------------------------------------------- #
# execution
# --------------------------------------------------------------------------- #
class TestExecution:
    def test_rebinding_changes_results_without_replanning(self, db):
        prepared = db.prepare_query("select count(*) as c from t "
                                    "where a <= :k")
        for k in (5, 17, 40):
            assert prepared.execute(params={"k": k}).rows == [(k,)]
        assert prepared.executions == 3

    def test_parameter_error_leaves_entry_reusable(self, db):
        prepared = db.prepare_query("select count(*) as c from t "
                                    "where a <= ?")
        with pytest.raises(ParameterError):
            prepared.execute(params=None)
        assert prepared.execute(params=(5,)).rows == [(5,)]

    def test_params_via_database_execute_share_cache_entry(self, db):
        sql = "select count(*) as c from t where a <= ?"
        first = db.execute(sql, params=(5,))
        second = db.execute(sql, params=(10,))
        assert first.rows == [(5,)] and second.rows == [(10,)]
        assert not first.cached and second.cached

    def test_null_parameter_rejected_everywhere(self, db):
        sql = "select count(*) as c from t where a <= ?"
        with pytest.raises(ParameterError, match="NULL"):
            db.execute(sql, params=(None,))
        with pytest.raises(ParameterError, match="NULL"):
            db.execute(sql, mode="volcano", params=(None,))

    def test_baseline_modes_accept_params(self, db):
        for mode in ("volcano", "vectorized"):
            result = db.execute("select count(*) as c from t where a <= ?",
                                mode=mode, params=(7,))
            assert result.rows == [(7,)]

    def test_bool_parameter(self, db):
        result = db.execute("select count(*) as c from t where flag = ?",
                            params=(True,))
        assert result.rows == [(20,)]


# --------------------------------------------------------------------------- #
# auto-parameterization
# --------------------------------------------------------------------------- #
class TestAutoParameterize:
    def test_extracts_literals(self):
        rewritten = auto_parameterize_sql(
            "select a + 2 from t where a > 10 and s = 'x'")
        assert rewritten is not None
        sql, values = rewritten
        assert normalize_sql(sql) == normalize_sql(
            "select a + ? from t where a > ? and s = ?")
        assert values == [2, 10, "x"]

    def test_skips_positional_and_limit_clauses(self):
        rewritten = auto_parameterize_sql(
            "select a, count(*) from t where a > 3 "
            "group by 1 order by 2 desc limit 5")
        sql, values = rewritten
        assert values == [3]
        assert "group by 1" in sql and "limit 5" in sql

    def test_skips_date_interval_like(self):
        rewritten = auto_parameterize_sql(
            "select a from t where d >= date '2021-01-01' "
            "and s like 'x%' and a > 4")
        sql, values = rewritten
        assert values == [4]
        assert "date '2021-01-01'" in sql and "like 'x%'" in sql

    def test_skips_unary_minus_but_not_binary(self):
        sql, values = auto_parameterize_sql(
            "select a from t where a > -3 and a - 7 > 0")
        assert values == [7, 0]
        assert "-3" in sql

    def test_inner_from_does_not_reset_order_clause(self):
        rewritten = auto_parameterize_sql(
            "select a from t order by extract(year from d), 2")
        assert rewritten is None  # the positional 2 must stay a literal

    def test_none_for_parameterized_or_literal_free(self):
        assert auto_parameterize_sql("select a from t where a = ?") is None
        assert auto_parameterize_sql("select a from t where a = :k") is None
        assert auto_parameterize_sql("select a from t") is None
        assert auto_parameterize_sql("select a from t where s = 'x") is None

    def test_shape_collides_on_one_cache_entry(self, db):
        results = [db.execute(f"select count(*) as c from t where a <= {k}")
                   for k in range(1, 41)]
        assert [r.rows for r in results] == [[(k,)] for k in range(1, 41)]
        assert not results[0].cached
        assert all(r.cached for r in results[1:])
        stats = db.plan_cache.stats
        assert stats.hits >= 39 and stats.misses == 1

    def test_opt_out_per_call_and_per_database(self, db):
        db.execute("select sum(a) as s from t where a = 1",
                   options=ExecOptions(auto_parameterize=False))
        db.execute("select sum(a) as s from t where a = 2",
                   options=ExecOptions(auto_parameterize=False))
        assert len(db.plan_cache) == 2  # distinct literal keys

        cold = Database(auto_parameterize=False)
        cold.create_table("u", [("a", SQLType.INT64)])
        cold.insert("u", [(1,), (2,)])
        cold.execute("select a from u where a = 1")
        cold.execute("select a from u where a = 2")
        assert len(cold.plan_cache) == 2

    def test_hint_typed_statement_survives_invalidation_rebuild(self, db):
        # "select 5" can only be typed from the auto-parameterization hint;
        # the rebuild after an insert must remember it.
        sql = "select 5 as x, count(*) as c from t"
        assert db.execute(sql).rows == [(5, 40)]
        db.insert("t", [(41, 1.0, 1.0, "name-1", dt.date(2022, 1, 1),
                         False)])
        assert db.execute(sql).rows == [(5, 41)]

    def test_auto_entries_are_type_qualified(self, db):
        # Same shape, differently typed constants: separate entries whose
        # results each match their literal form.  One INT64-typed plan
        # bound with 2.5 would silently diverge (or raise) otherwise.
        assert db.execute("select 1 as x from t limit 1").rows == [(1,)]
        assert db.execute("select 1.0 as x from t limit 1").rows == [(1.0,)]
        assert db.execute("select 'y' as x from t limit 1").rows == [("y",)]
        a = db.execute("select count(*) as c from t where a >= 2")
        b = db.execute("select count(*) as c from t where a >= 2.5")
        assert a.rows == [(39,)] and b.rows == [(38,)]
        # Same-typed constants still collide on one entry.
        again = db.execute("select count(*) as c from t where a >= 30")
        assert again.cached and again.rows == [(11,)]


# --------------------------------------------------------------------------- #
# ExecOptions
# --------------------------------------------------------------------------- #
class TestExecOptions:
    def test_resolve_defaults_and_overrides(self):
        assert ExecOptions.resolve(None) == ExecOptions()
        opts = ExecOptions(mode="bytecode", threads=4)
        assert ExecOptions.resolve(opts) is opts
        merged = ExecOptions.resolve(opts, mode="optimized")
        assert merged.mode == "optimized" and merged.threads == 4

    def test_resolve_rejects_unknown_and_bad_type(self):
        with pytest.raises(ExecutionError, match="unknown execution option"):
            ExecOptions.resolve(None, morsel_size=3)
        with pytest.raises(ExecutionError, match="ExecOptions"):
            ExecOptions.resolve({"mode": "adaptive"})

    def test_accepted_across_call_sites(self, db):
        opts = ExecOptions(mode="bytecode")
        assert db.execute("select count(*) as c from t",
                          options=opts).mode == "bytecode"
        ticket = db.submit("select count(*) as c from t", options=opts)
        assert ticket.result(timeout=30).mode == "bytecode"
        assert ticket.options.mode == "bytecode"
        with db.session(options=opts) as session:
            assert session.execute("select count(*) as c from t"
                                   ).mode == "bytecode"
            assert session.mode == "bytecode"  # legacy accessor
            assert session.execute("select count(*) as c from t",
                                   mode="optimized").mode == "optimized"
        prepared = db.prepare_query("select count(*) as c from t")
        assert prepared.execute(options=opts).mode == "bytecode"
        db.close()

    def test_session_rejects_unknown_override(self, db):
        session = db.session()
        with pytest.raises(SchedulerError):
            session.execute("select count(*) as c from t", morsel_size=9)


# --------------------------------------------------------------------------- #
# satellites: drop_table + QueryResult ergonomics
# --------------------------------------------------------------------------- #
class TestDropTable:
    def test_drop_invalidates_cached_plans(self, db):
        sql = "select count(*) as c from t where a <= 5"
        db.execute(sql)
        assert len(db.plan_cache) == 1
        db.drop_table("t")
        assert not db.catalog.has_table("t")
        key = list(db.plan_cache.keys())[0]
        assert db.plan_cache.get(key) is None  # dropped on lookup
        assert db.plan_cache.stats.invalidations >= 1

    def test_recreate_after_drop_replans(self, db):
        sql = "select count(*) as c from t"
        assert db.execute(sql).rows == [(40,)]
        db.drop_table("t")
        db.create_table("t", [("a", SQLType.INT64)])
        db.insert("t", [(1,), (2,)])
        assert db.execute(sql).rows == [(2,)]

    def test_drop_unknown_table_raises(self, db):
        from repro.errors import CatalogError
        with pytest.raises(CatalogError):
            db.drop_table("nope")


class TestQueryResultErgonomics:
    def test_iterable_and_columns(self, db):
        result = db.execute("select a, s from t where a <= 3 order by a")
        assert list(result) == [(1, "name-1"), (2, "name-2"), (3, "name-3")]
        assert [row for row in result] == result.rows  # re-iterable
        assert result.columns() == {"a": [1, 2, 3],
                                    "s": ["name-1", "name-2", "name-3"]}

    def test_columns_empty_result(self, db):
        result = db.execute("select a from t where a > 1000")
        assert result.columns() == {"a": []}
        assert list(result) == []
