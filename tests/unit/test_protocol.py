"""Unit tests of the wire-protocol frame codec (no sockets involved).

Every message type must survive an encode/decode round trip bit-exactly,
and the decoder must reject every malformation class with a
:class:`~repro.errors.ProtocolError` rather than crashing or silently
accepting: truncated payloads, trailing bytes, unknown frame types and
value tags, oversized frames, and invalid embedded data (bad UTF-8, bad
dates).
"""

from __future__ import annotations

import datetime
import struct

import pytest

from repro.errors import ProtocolError
from repro.server import protocol
from repro.server.protocol import (FRAME_HEADER, FRAME_HEADER_BYTES,
                                   MAX_FRAME_BYTES, PROTOCOL_VERSION,
                                   PayloadReader, PayloadWriter,
                                   decode_header, decode_payload,
                                   decode_result_rows, encode_frame)


def roundtrip(message):
    """Encode one message to a frame and decode it back."""
    frame = encode_frame(message)
    length, frame_type = decode_header(frame[:FRAME_HEADER_BYTES])
    payload = frame[FRAME_HEADER_BYTES:]
    assert length == len(payload)
    assert frame_type == message.frame_type
    return decode_payload(frame_type, payload)


# ---------------------------------------------------------------------- #
# round trips
# ---------------------------------------------------------------------- #
ALL_MESSAGES = [
    protocol.Hello(token="secret", session_name="alice",
                   protocol_version=PROTOCOL_VERSION),
    protocol.Hello(),  # all defaults / empty strings
    protocol.Welcome(session_name="alice", server_version="1.5.0"),
    protocol.Prepare(request_id=7, sql="select * from t where a = ?"),
    protocol.Prepared(request_id=7, statement_id=3,
                      parameters=[("", "int64"), ("name", "string")],
                      column_names=["a", "b"],
                      column_types=["int64", "float64"]),
    protocol.Execute(request_id=9, statement_id=3,
                     params=[1, 2.5, "x", True,
                             datetime.date(2024, 2, 29)],
                     options={"mode": "adaptive", "threads": 2},
                     batch_rows=128),
    protocol.Execute(request_id=10, sql="select 1 as one",
                     params={"a": 4, "label": "hi"}),
    protocol.Execute(request_id=11, sql="select 1 as one"),  # params=None
    protocol.RowHeader(request_id=9, column_names=["a", "d"],
                       column_types=["int64", "date"]),
    protocol.RowBatch(request_id=9,
                      rows=[(1, 2.0, "three", False), (-(2 ** 62), 0.0,
                                                       "", True)]),
    protocol.RowBatch(request_id=9, rows=[]),
    protocol.Done(request_id=9, row_count=1234, mode="adaptive",
                  cached=True, total_seconds=0.25, queue_seconds=0.001),
    protocol.Error(request_id=9, code="BUSY", message="queue full",
                   retry_after_ms=120),
    protocol.Cancel(request_id=12, target_request_id=9),
    protocol.CancelResult(request_id=12, cancelled=True),
    protocol.CloseStatement(request_id=13, statement_id=3),
    protocol.Ok(request_id=13),
    protocol.Goodbye(),
]


@pytest.mark.parametrize("message", ALL_MESSAGES,
                         ids=lambda m: type(m).__name__)
def test_roundtrip_preserves_every_field(message):
    assert roundtrip(message) == message


def test_positional_params_roundtrip_as_list():
    # The codec normalises any positional sequence to a list.
    decoded = roundtrip(protocol.Execute(request_id=1, sql="s",
                                         params=(1, 2)))
    assert decoded.params == [1, 2]


def test_numpy_like_int_scalars_travel_as_int():
    np = pytest.importorskip("numpy")
    decoded = roundtrip(protocol.RowBatch(
        request_id=1, rows=[(np.int64(41), np.int32(-3))]))
    assert decoded.rows == [(41, -3)]
    assert all(type(v) is int for v in decoded.rows[0])


def test_unrepresentable_value_is_rejected_at_encode_time():
    with pytest.raises(ProtocolError, match="not.*representable"):
        encode_frame(protocol.RowBatch(request_id=1, rows=[(object(),)]))


def test_decode_result_rows_applies_column_types():
    rows = [(738947, 1, 42)]
    decoded = decode_result_rows(rows, ["date", "bool", "int64"])
    (date_value, bool_value, int_value), = decoded
    assert isinstance(date_value, datetime.date)
    assert bool_value is True
    assert int_value == 42


# ---------------------------------------------------------------------- #
# malformed input
# ---------------------------------------------------------------------- #
def test_short_header_is_rejected():
    with pytest.raises(ProtocolError, match="short frame header"):
        decode_header(b"\x00\x00")


def test_oversized_declared_length_is_rejected_before_payload():
    header = FRAME_HEADER.pack(MAX_FRAME_BYTES + 1, protocol.HELLO)
    with pytest.raises(ProtocolError, match="exceeds"):
        decode_header(header)


def test_oversized_outgoing_frame_is_rejected():
    huge = protocol.RowBatch(request_id=1,
                             rows=[("x" * (MAX_FRAME_BYTES + 16),)])
    with pytest.raises(ProtocolError, match="exceeds"):
        encode_frame(huge)


def test_unknown_frame_type_is_rejected():
    with pytest.raises(ProtocolError, match="unknown frame type"):
        decode_payload(0x7F, b"")


def test_truncated_payload_is_rejected():
    frame = encode_frame(protocol.Prepare(request_id=1, sql="select 1"))
    payload = frame[FRAME_HEADER_BYTES:]
    for cut in (0, 4, len(payload) - 1):
        with pytest.raises(ProtocolError, match="truncated"):
            decode_payload(protocol.PREPARE, payload[:cut])


def test_trailing_bytes_are_rejected():
    frame = encode_frame(protocol.Ok(request_id=1))
    payload = frame[FRAME_HEADER_BYTES:]
    with pytest.raises(ProtocolError, match="trailing byte"):
        decode_payload(protocol.OK, payload + b"\x00")


def test_unknown_value_tag_is_rejected():
    writer = PayloadWriter()
    writer.u64(1)       # request_id
    writer.u32(1)       # one row
    writer.u32(1)       # one value
    writer.u8(99)       # bogus tag
    with pytest.raises(ProtocolError, match="unknown value tag"):
        decode_payload(protocol.ROW_BATCH, writer.getvalue())


def test_unknown_params_kind_is_rejected():
    writer = PayloadWriter()
    writer.u64(1)       # request_id
    writer.u64(0)       # statement_id
    writer.string("s")  # sql
    writer.u8(7)        # bogus params kind
    with pytest.raises(ProtocolError, match="unknown params kind"):
        decode_payload(protocol.EXECUTE, writer.getvalue())


def test_invalid_utf8_in_string_is_rejected():
    writer = PayloadWriter()
    writer.u64(1)
    raw = struct.pack("!I", 2) + b"\xff\xfe"  # length-prefixed bad UTF-8
    payload = writer.getvalue() + raw
    with pytest.raises(ProtocolError, match="invalid UTF-8"):
        decode_payload(protocol.PREPARE, payload)


def test_invalid_date_value_is_rejected():
    writer = PayloadWriter()
    writer.u64(1)       # request_id
    writer.u32(1)       # one row
    writer.u32(1)       # one value
    writer.u8(4)        # _VAL_DATE
    writer.string("not-a-date")
    with pytest.raises(ProtocolError, match="invalid DATE"):
        decode_payload(protocol.ROW_BATCH, writer.getvalue())


def test_reader_expect_end_and_bounds():
    reader = PayloadReader(b"\x01\x02")
    assert reader.u8() == 1
    with pytest.raises(ProtocolError, match="truncated"):
        reader.u32()
    assert reader.u8() == 2
    reader.expect_end()
