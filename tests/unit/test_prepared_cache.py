"""Tests for the prepared-query subsystem and the plan/artifact cache."""

import threading

import pytest

from repro import Database, ExecOptions, PlanCache, SQLType, normalize_sql
from repro.backend.cost_model import CostModel, TierEstimate
from repro.errors import ExecutionError

ENGINE_MODES = ["ir-interp", "bytecode", "unoptimized", "optimized",
                "adaptive"]


@pytest.fixture()
def db():
    db = Database(morsel_size=256)
    db.create_table("t", [("a", SQLType.INT64), ("b", SQLType.FLOAT64)])
    db.create_table("u", [("x", SQLType.INT64)])
    db.insert("t", [(i % 13, float(i)) for i in range(5000)])
    db.insert("u", [(i,) for i in range(100)])
    return db


SQL = "select a, sum(b) as s, count(*) as c from t group by a order by a"


class TestNormalizeSQL:
    def test_whitespace_and_case_insensitive(self):
        assert normalize_sql("SELECT  a\n FROM   t") == \
            normalize_sql("select a from t")

    def test_string_literals_preserved(self):
        normalized = normalize_sql("SELECT a FROM t WHERE s = 'Ab  C'")
        assert normalized == "select a from t where s = 'Ab  C'"

    def test_escaped_quote_in_literal(self):
        normalized = normalize_sql("select 'it''s  A' from T")
        assert normalized == "select 'it''s  A' from t"

    def test_different_literals_do_not_collide(self):
        assert normalize_sql("select 'A' from t") != \
            normalize_sql("select 'a' from t")

    def test_comments_stripped_like_the_lexer(self):
        assert normalize_sql("select a from t -- trailing") == \
            normalize_sql("select a from t")
        assert normalize_sql("select a /* block */ from t") == \
            normalize_sql("select a from t")

    def test_line_comment_does_not_swallow_next_line(self):
        # Collapsing the newline before stripping comments would make these
        # two semantically different queries collide on one cache key.
        multiline = normalize_sql("SELECT a\n-- note\nFROM t")
        single_line = normalize_sql("SELECT a -- note FROM t")
        assert multiline == "select a from t"
        assert single_line == "select a"
        assert multiline != single_line

    def test_unterminated_block_comment_never_hits_cache(self, db):
        db.execute("select a from t", mode="bytecode")
        # Lexically invalid: must raise even with the valid form cached.
        with pytest.raises(Exception):
            db.execute("select a from t /* unterminated", mode="bytecode")

    def test_comment_collision_does_not_serve_wrong_plan(self, db):
        db.execute("select a\n-- note\nfrom t", mode="bytecode")
        # Same text on one line is a *different* query (the comment swallows
        # FROM); it must not be served from the cache but fail on its own.
        with pytest.raises(Exception):
            db.execute("select a -- note from t", mode="bytecode")


class TestPlanCache:
    class _Entry:
        def __init__(self, valid=True):
            self.valid = valid

        def is_valid(self):
            return self.valid

    def test_lru_eviction(self):
        cache = PlanCache(capacity=2)
        a, b, c = self._Entry(), self._Entry(), self._Entry()
        cache.put("a", a)
        cache.put("b", b)
        assert cache.get("a") is a  # refreshes "a"
        cache.put("c", c)           # evicts "b", the LRU tail
        assert cache.get("b") is None
        assert cache.get("a") is a
        assert cache.get("c") is c
        assert cache.stats.evictions == 1

    def test_invalid_entries_dropped_on_lookup(self):
        cache = PlanCache(capacity=4)
        entry = self._Entry()
        cache.put("k", entry)
        entry.valid = False
        assert cache.get("k") is None
        assert "k" not in cache
        assert cache.stats.invalidations == 1

    def test_zero_capacity_disables(self):
        cache = PlanCache(capacity=0)
        cache.put("k", self._Entry())
        assert len(cache) == 0

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            PlanCache(capacity=-1)


class TestTransparentCache:
    def test_hit_skips_frontend_phases(self, db):
        # use_result_cache=False: this test measures the *plan* cache (the
        # repeat must re-execute, just without the front-end phases).
        first = db.execute(SQL, mode="optimized", use_result_cache=False)
        second = db.execute(SQL, mode="optimized", use_result_cache=False)
        assert not first.cached and second.cached
        assert first.timings.parse > 0 and first.timings.compile > 0
        assert second.timings.parse == 0
        assert second.timings.bind == 0
        assert second.timings.plan == 0
        assert second.timings.codegen == 0
        assert second.timings.compile == 0  # tier reused as well
        assert second.timings.execution > 0
        assert second.rows == first.rows

    def test_cache_shared_across_modes(self, db):
        db.execute(SQL, mode="optimized")
        result = db.execute(SQL, mode="bytecode")
        assert result.cached  # same plan entry, different tier
        assert result.timings.compile > 0  # bytecode tier not built yet
        again = db.execute(SQL, mode="bytecode")
        assert again.timings.compile == 0

    def test_normalized_key_matches_reformatted_sql(self, db):
        db.execute(SQL, mode="bytecode")
        reformatted = ("SELECT  a, SUM(b) AS s, COUNT(*) AS c\n"
                       "FROM t GROUP BY a ORDER BY a")
        assert db.execute(reformatted, mode="bytecode").cached

    def test_insert_into_referenced_table_invalidates(self, db):
        first = db.execute(SQL, mode="optimized")
        db.insert("t", [(1, 1000.0)])
        rebuilt = db.execute(SQL, mode="optimized")
        assert not rebuilt.cached
        assert rebuilt.timings.parse > 0
        assert rebuilt.rows != first.rows  # sees the new row
        assert db.plan_cache.stats.invalidations == 1

    def test_unrelated_insert_keeps_entry(self, db):
        db.execute(SQL, mode="optimized")
        db.insert("u", [(999,)])
        assert db.execute(SQL, mode="optimized").cached

    def test_use_cache_false_bypasses(self, db):
        db.execute(SQL, mode="optimized")
        cold = db.execute(SQL, mode="optimized", use_cache=False)
        assert not cold.cached
        assert cold.timings.parse > 0 and cold.timings.compile > 0

    def test_disabled_cache(self):
        db = Database(plan_cache_size=0, result_cache_size=0)
        db.create_table("t", [("a", SQLType.INT64)])
        db.insert("t", [(i,) for i in range(10)])
        sql = "select sum(a) as s from t"
        assert not db.execute(sql).cached
        assert not db.execute(sql).cached

    def test_stats_counters(self, db):
        db.execute(SQL, mode="optimized")   # miss
        db.execute(SQL, mode="adaptive")    # hit
        db.execute(SQL, mode="bytecode")    # hit
        stats = db.plan_cache.stats
        assert stats.misses == 1 and stats.hits == 2
        assert stats.hit_rate == pytest.approx(2 / 3)


class TestCachedMatchesUncached:
    @pytest.mark.parametrize("mode", ENGINE_MODES)
    def test_identical_results(self, db, mode):
        uncached = db.execute(SQL, mode=mode, use_cache=False)
        build = db.execute(SQL, mode=mode)
        hit = db.execute(SQL, mode=mode)
        assert build.rows == uncached.rows
        assert hit.rows == uncached.rows
        assert hit.column_names == uncached.column_names
        assert hit.column_types == uncached.column_types

    def test_threaded_cached_execution(self, db):
        reference = db.execute(SQL, mode="optimized", use_cache=False).rows
        for mode in ("bytecode", "optimized", "adaptive"):
            assert db.execute(SQL, mode=mode, threads=4).rows == reference
            assert db.execute(SQL, mode=mode, threads=4).rows == reference

    def test_cached_results_do_not_alias_state(self, db):
        # A result without DISTINCT/ORDER BY/LIMIT must not alias the
        # output-row list that the next execution resets in place.
        sql = "select a, b from t where a = 3"
        first = db.execute(sql, mode="bytecode")
        snapshot = list(first.rows)
        db.execute(sql, mode="bytecode")
        assert first.rows == snapshot


class TestPreparedQuery:
    def test_prepare_then_execute(self, db):
        prepared = db.prepare_query(SQL)
        assert prepared.referenced_tables == {"t"}
        first = prepared.execute(mode="optimized")
        second = prepared.execute(mode="optimized")
        assert not first.cached and second.cached
        assert second.timings.parse == 0 and second.timings.compile == 0
        assert first.rows == second.rows
        assert prepared.executions == 2

    def test_prepare_query_returns_cached_entry(self, db):
        assert db.prepare_query(SQL) is db.prepare_query(SQL)

    def test_rejects_baseline_modes(self, db):
        prepared = db.prepare_query(SQL)
        with pytest.raises(ExecutionError):
            prepared.execute(mode="volcano")

    def test_held_reference_reprepares_after_insert(self, db):
        prepared = db.prepare_query(SQL)
        before = prepared.execute(mode="bytecode")
        db.insert("t", [(1, 1000.0)])
        assert not prepared.is_valid()
        after = prepared.execute(mode="bytecode")
        assert not after.cached       # transparently re-prepared
        assert after.rows != before.rows
        assert prepared.is_valid()

    def test_adaptive_reuses_compiled_tier(self, db):
        # A cost model with free compilation and large speedups makes the
        # Fig. 7 policy switch deterministically on the first run.
        model = CostModel(estimates={
            "bytecode": TierEstimate(0.0, 0.0, 1.0),
            "unoptimized": TierEstimate(0.0, 0.0, 4.0),
            "optimized": TierEstimate(0.0, 0.0, 8.0),
        })
        prepared = db.prepare_query(SQL)
        first = prepared.execute(mode="adaptive", cost_model=model)
        switched = [p for p in first.pipelines if len(p.mode_history) > 1]
        assert switched, "expected at least one pipeline to switch tiers"
        second = prepared.execute(cost_model=model,
                                  options=ExecOptions(
                                      mode="adaptive",
                                      use_result_cache=False))
        assert second.timings.compile == 0.0  # tiers and bytecode reused
        reused = [p for p in second.pipelines
                  if p.mode_history[0] != "bytecode"]
        assert reused, "expected a pipeline to start in a compiled tier"
        assert second.rows == first.rows

    def test_execute_nowait_does_not_block_on_busy_entry(self, db):
        prepared = db.prepare_query(SQL)
        prepared.execute(mode="bytecode")
        entered = threading.Event()
        release = threading.Event()

        def hold_lock():
            with prepared._lock:
                entered.set()
                release.wait(timeout=5)

        holder = threading.Thread(target=hold_lock)
        holder.start()
        try:
            assert entered.wait(timeout=5)
            assert prepared.execute_nowait(mode="bytecode") is None
            # Database.execute must fall back to a cold build, not block
            # (use_result_cache=False: with the cache on, a busy entry is
            # instead served from the cached result -- tested separately).
            result = db.execute(SQL, mode="bytecode",
                                use_result_cache=False)
            assert not result.cached
        finally:
            release.set()
            holder.join()
        # With the entry free again, execute_nowait succeeds.
        assert prepared.execute_nowait(mode="bytecode") is not None

    def test_profile_query_measures_cold_phases(self, db):
        from repro.adaptive.simulation import profile_query

        db.execute(SQL, mode="optimized")  # warm the plan cache
        profile = profile_query(db, SQL)
        assert profile.planning_seconds > 0
        assert profile.codegen_seconds > 0
        assert all(p.compile_seconds["optimized"] > 0
                   for p in profile.pipelines)

    def test_concurrent_executions_are_safe(self, db):
        prepared = db.prepare_query(SQL)
        reference = prepared.execute(mode="optimized").rows
        results = []
        errors = []

        def run():
            try:
                for _ in range(3):
                    results.append(prepared.execute(mode="optimized").rows)
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        workers = [threading.Thread(target=run) for _ in range(4)]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join()
        assert not errors
        assert len(results) == 12
        assert all(rows == reference for rows in results)


class TestCatalogVersions:
    def test_insert_bumps_referenced_version(self, db):
        before = db.catalog.table_version("t")
        db.insert("t", [(1, 1.0)])
        assert db.catalog.table_version("t") > before

    def test_create_and_drop_bump(self, db):
        version = db.catalog.version
        db.create_table("v", [("a", SQLType.INT64)])
        assert db.catalog.version > version
        created = db.catalog.table_version("v")
        db.catalog.drop_table("v")
        assert db.catalog.table_version("v") > created

    def test_unknown_table_version_is_zero(self, db):
        assert db.catalog.table_version("nope") == 0


class TestBaselineArgumentValidation:
    @pytest.mark.parametrize("mode", ["volcano", "vectorized"])
    def test_threads_rejected(self, db, mode):
        with pytest.raises(ExecutionError):
            db.execute(SQL, mode=mode, threads=2)

    @pytest.mark.parametrize("mode", ["volcano", "vectorized"])
    def test_collect_trace_rejected(self, db, mode):
        with pytest.raises(ExecutionError):
            db.execute(SQL, mode=mode, collect_trace=True)

    @pytest.mark.parametrize("mode", ["volcano", "vectorized"])
    def test_default_arguments_still_work(self, db, mode):
        reference = db.execute(SQL, mode="optimized", use_cache=False)
        result = db.execute(SQL, mode=mode)
        assert [tuple(round(v, 4) if isinstance(v, float) else v
                      for v in row) for row in result.rows] == \
            [tuple(round(v, 4) if isinstance(v, float) else v
                   for v in row) for row in reference.rows]
