"""Chunked columnar storage, zone maps and scan pruning."""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro import Database, SQLType
from repro.catalog import Catalog, ColumnView, Table, TableSchema
from repro.catalog.statistics import compute_table_statistics
from repro.errors import CatalogError
from repro.adaptive import MorselDispatcher
from repro.options import ExecOptions
from repro.plan.sargs import (
    SargConjunct,
    SargOperand,
    chunk_survives,
    extract_scan_predicates,
    plan_table_scan,
)

ALL_MODES = ("ir-interp", "bytecode", "unoptimized", "optimized",
             "adaptive", "volcano", "vectorized")


def make_table(chunk_rows=8, columns=(("a", SQLType.INT64),)):
    return Table(TableSchema.of("t", list(columns)), chunk_rows=chunk_rows)


# --------------------------------------------------------------------------- #
# chunk lifecycle
# --------------------------------------------------------------------------- #
class TestChunkLifecycle:
    def test_chunk_rows_must_be_power_of_two(self):
        with pytest.raises(CatalogError):
            make_table(chunk_rows=100)
        with pytest.raises(CatalogError):
            make_table(chunk_rows=0)

    def test_appends_seal_full_chunks(self):
        table = make_table(chunk_rows=8)
        table.insert_rows([(i,) for i in range(20)])
        assert table.num_rows == 20
        assert table.num_chunks == 3
        assert table.num_sealed_chunks == 2
        chunks = table.column_chunks("a")
        assert [len(chunk) for chunk in chunks] == [8, 8, 4]

    def test_bulk_append_crosses_chunk_boundaries(self):
        table = make_table(chunk_rows=8)
        table.insert_rows([(i,) for i in range(5)])
        table.append_columns({"a": list(range(5, 25))})
        assert table.num_rows == 25
        assert table.column_data("a") == list(range(25))
        assert [len(chunk) for chunk in table.column_chunks("a")] == \
            [8, 8, 8, 1]

    def test_column_view_semantics(self):
        table = make_table(chunk_rows=4)
        table.insert_rows([(i,) for i in range(10)])
        view = table.column_data("a")
        assert isinstance(view, ColumnView)
        assert len(view) == 10
        assert view[0] == 0 and view[9] == 9 and view[-1] == 9
        assert list(view) == list(range(10))
        assert view[2:7] == [2, 3, 4, 5, 6]
        assert view[::3] == [0, 3, 6, 9]
        assert view == list(range(10))
        assert not (view == list(range(9)))

    def test_view_identity_is_stable_across_inserts(self):
        table = make_table(chunk_rows=4)
        view = table.column_data("a")
        table.insert_rows([(i,) for i in range(10)])
        assert table.column_data("a") is view
        assert view[9] == 9  # new rows visible through the old view

    def test_row_and_rows(self):
        table = make_table(chunk_rows=4, columns=(("a", SQLType.INT64),
                                                  ("b", SQLType.STRING)))
        table.insert_rows([(i, f"s{i}") for i in range(6)])
        assert table.row(5) == (5, "s5")
        assert list(table.rows())[0] == (0, "s0")


# --------------------------------------------------------------------------- #
# zone maps
# --------------------------------------------------------------------------- #
class TestZoneMaps:
    def test_zone_maps_exact_per_sealed_chunk(self):
        table = make_table(chunk_rows=8)
        table.insert_rows([(i,) for i in range(20)])
        assert table.zone_map("a", 0) == (0, 7)
        assert table.zone_map("a", 1) == (8, 15)
        # The open tail chunk has no zone map: it can still change.
        assert table.zone_map("a", 2) is None

    def test_zone_map_not_affected_by_later_inserts(self):
        table = make_table(chunk_rows=8)
        table.insert_rows([(i,) for i in range(8)])
        assert table.zone_map("a", 0) == (0, 7)
        table.insert_rows([(100,)])
        assert table.zone_map("a", 0) == (0, 7)

    def test_unordered_data(self):
        table = make_table(chunk_rows=4)
        table.insert_rows([(3,), (-5,), (7,), (0,), (99,)])
        assert table.zone_map("a", 0) == (-5, 7)

    def test_nan_chunk_has_no_zone_map(self):
        # NaN poisons min()/max() (every comparison is False), which would
        # prune a chunk whose non-NaN rows qualify.  Such chunks get no
        # zone map and are always scanned.
        table = make_table(chunk_rows=4, columns=(("f", SQLType.FLOAT64),))
        table.insert_rows([(float("nan"),), (5.0,), (6.0,), (7.0,), (1.0,)])
        assert table.zone_map("f", 0) is None
        # Cached: the NaN scan runs once, later calls still answer None.
        assert table.zone_map("f", 0) is None

    def test_nan_pruned_scan_matches_unpruned(self):
        db = Database()
        db.catalog.create_table("t", [("f", SQLType.FLOAT64)], chunk_rows=4)
        db.insert("t", [(float("nan"),), (5.0,), (6.0,), (7.0,)]
                  + [(float(i),) for i in range(4, 20)])
        sql = "select count(*) as c from t where f > 1.0"
        for mode in ALL_MODES:
            pruned = db.execute(sql, mode=mode)
            unpruned = db.execute(
                sql, mode=mode, options=ExecOptions(use_pruning=False))
            assert pruned.rows == unpruned.rows == [(19,)], mode


# --------------------------------------------------------------------------- #
# per-chunk numpy caching + the ragged-array race fix
# --------------------------------------------------------------------------- #
class TestNumpyChunks:
    def test_sealed_chunk_arrays_survive_inserts(self):
        table = make_table(chunk_rows=8)
        table.insert_rows([(i,) for i in range(16)])
        chunk0 = table.numpy_chunk("a", 0)
        full = table.numpy_column("a")
        table.insert_rows([(99,)])
        # The sealed chunk's cached array is reused, not rebuilt.
        assert table.numpy_chunk("a", 0) is chunk0
        refreshed = table.numpy_column("a")
        assert refreshed is not full
        assert refreshed.tolist() == list(range(16)) + [99]

    def test_numpy_column_caches_by_row_count(self):
        table = make_table(chunk_rows=8)
        table.insert_rows([(i,) for i in range(10)])
        first = table.numpy_column("a")
        assert table.numpy_column("a") is first

    def test_numpy_snapshot_is_cross_column_consistent(self):
        table = make_table(chunk_rows=64, columns=(("a", SQLType.INT64),
                                                   ("b", SQLType.FLOAT64)))
        table.insert_rows([(i, float(i)) for i in range(100)])
        stop = threading.Event()

        def writer():
            while not stop.is_set():
                table.insert_rows([(1, 1.0)] * 7)

        thread = threading.Thread(target=writer)
        thread.start()
        try:
            for _ in range(200):
                arrays, rows = table.numpy_snapshot(["a", "b"])
                assert len(arrays["a"]) == len(arrays["b"]) == rows
                single = table.numpy_column("a")
                assert len(single) <= table.num_rows
        finally:
            stop.set()
            thread.join()


# --------------------------------------------------------------------------- #
# catalog invalidation (append_columns bugfix)
# --------------------------------------------------------------------------- #
class TestMutationInvalidation:
    def test_insert_rows_bumps_table_version(self):
        catalog = Catalog()
        table = catalog.create_table("t", [("a", SQLType.INT64)])
        before = catalog.table_version("t")
        table.insert_rows([(1,)])
        assert catalog.table_version("t") > before

    def test_append_columns_bumps_table_version(self):
        catalog = Catalog()
        table = catalog.create_table("t", [("a", SQLType.INT64)])
        before = catalog.table_version("t")
        table.append_columns({"a": [1, 2, 3]})
        assert catalog.table_version("t") > before

    def test_append_columns_invalidates_statistics(self):
        catalog = Catalog()
        table = catalog.create_table("t", [("a", SQLType.INT64)])
        table.insert_rows([(1,), (2,)])
        stats = catalog.statistics("t")
        assert stats.num_rows == 2
        table.append_columns({"a": [10, 20, 30]})
        assert catalog.statistics("t").num_rows == 5

    def test_append_columns_invalidates_cached_plans(self):
        """Regression: a cached plan must not serve stale results after a
        bulk column append that bypasses ``Database.insert``."""
        db = Database()
        db.create_table("t", [("a", SQLType.INT64)])
        db.insert("t", [(1,), (2,)])
        first = db.execute("select count(*) from t")
        assert first.rows == [(2,)]
        db.catalog.table("t").append_columns({"a": [3, 4, 5]})
        second = db.execute("select count(*) from t")
        assert second.rows == [(5,)]

    def test_empty_append_does_not_bump_version(self):
        catalog = Catalog()
        table = catalog.create_table("t", [("a", SQLType.INT64)])
        before = catalog.table_version("t")
        table.append_columns({"a": []})
        assert catalog.table_version("t") == before


# --------------------------------------------------------------------------- #
# statistics exactness (sampled stats must never drive pruning)
# --------------------------------------------------------------------------- #
class TestStatisticsExactness:
    def test_unsampled_statistics_are_exact(self):
        table = make_table(chunk_rows=8)
        table.insert_rows([(i,) for i in range(100)])
        stats = compute_table_statistics(table, sample_limit=1000)
        assert stats.column("a").exact is True
        assert stats.column("a").min_value == 0
        assert stats.column("a").max_value == 99

    def test_sampled_statistics_are_marked_inexact(self):
        table = make_table(chunk_rows=8)
        # Put the extremes between sample points: strided sampling misses
        # them, which is exactly why pruning must not use these values.
        values = [50] * 1000
        values[501] = -7
        values[503] = 999
        table.insert_rows([(v,) for v in values])
        stats = compute_table_statistics(table, sample_limit=10)
        column = stats.column("a")
        assert column.exact is False
        assert column.min_value > -7 or column.max_value < 999

    def test_pruning_consults_zone_maps_not_statistics(self):
        """Even with wildly stale statistics, pruning stays correct because
        it reads only the exact per-chunk zone maps."""
        db = Database()
        db.catalog.create_table("t", [("a", SQLType.INT64)], chunk_rows=8)
        db.insert("t", [(i,) for i in range(64)])
        db.catalog.statistics("t")  # populate (exact here, but cached)
        result = db.execute("select a from t where a = 63")
        assert result.rows == [(63,)]
        assert result.stats["chunks_pruned"] > 0


# --------------------------------------------------------------------------- #
# sargable extraction
# --------------------------------------------------------------------------- #
class TestSargExtraction:
    def _scan_predicates(self, db, sql):
        _, planning, _ = db.prepare(sql)
        for pipeline in planning.physical.pipelines:
            if pipeline.scan_predicates:
                return pipeline.scan_predicates
        return []

    @pytest.fixture()
    def db(self):
        db = Database()
        db.create_table("t", [("a", SQLType.INT64), ("f", SQLType.FLOAT64),
                              ("d", SQLType.DATE), ("s", SQLType.STRING),
                              ("p", SQLType.DECIMAL)])
        db.insert("t", [(1, 1.0, "2020-01-01", "x", 1.5)])
        return db

    def test_comparison_shapes(self, db):
        sargs = self._scan_predicates(db, "select a from t where a > 5")
        assert len(sargs) == 1
        assert sargs[0].kind == "cmp" and sargs[0].operator == ">"
        # Mirrored: constant on the left flips the operator.
        sargs = self._scan_predicates(db, "select a from t where 5 > a")
        assert sargs[0].operator == "<"

    def test_between_and_in(self, db):
        sargs = self._scan_predicates(
            db, "select a from t where a between 2 and 7")
        assert sargs[0].kind == "between"
        sargs = self._scan_predicates(
            db, "select a from t where a in (1, 2, 3)")
        assert sargs[0].kind == "in" and len(sargs[0].operands) == 3

    def test_parameter_slots_are_kept(self, db):
        sargs = self._scan_predicates(db, "select a from t where a > ?")
        assert sargs[0].operands[0].param_index == 0
        assert sargs[0].operands[0].value is None

    def test_conjunction_extracts_each_conjunct(self, db):
        sargs = self._scan_predicates(
            db, "select a from t where a > 1 and s = 'x' and f < 2.5")
        assert len(sargs) == 3

    def test_decimal_storage_flagged(self, db):
        sargs = self._scan_predicates(db, "select a from t where p > 1.0")
        assert sargs[0].decimal_storage is True

    def test_date_literal_encoded(self, db):
        sargs = self._scan_predicates(
            db, "select a from t where d >= date '2020-06-01'")
        assert sargs[0].kind == "cmp"
        assert isinstance(sargs[0].operands[0].value, int)

    def test_non_sargable_shapes_ignored(self, db):
        assert self._scan_predicates(
            db, "select a from t where a + 1 > 5") == []
        assert self._scan_predicates(
            db, "select a from t where a > 1 or a < 0") == []
        assert self._scan_predicates(
            db, "select a from t where s like 'x%'") == []


# --------------------------------------------------------------------------- #
# chunk_survives semantics
# --------------------------------------------------------------------------- #
class TestChunkSurvives:
    def _one(self, kind, zone, params=(), **kwargs):
        conjunct = SargConjunct(column="a", kind=kind, **kwargs)
        return chunk_survives([conjunct], lambda _: zone, params)

    def test_comparisons(self):
        zone = (10, 20)
        lit = lambda v: (SargOperand(value=v),)
        assert self._one("cmp", zone, operator="=", operands=lit(15))
        assert not self._one("cmp", zone, operator="=", operands=lit(25))
        assert self._one("cmp", zone, operator="<", operands=lit(11))
        assert not self._one("cmp", zone, operator="<", operands=lit(10))
        assert self._one("cmp", zone, operator=">", operands=lit(19))
        assert not self._one("cmp", zone, operator=">", operands=lit(20))
        assert self._one("cmp", zone, operator="<=", operands=lit(10))
        assert self._one("cmp", zone, operator=">=", operands=lit(20))
        assert self._one("cmp", zone, operator="<>", operands=lit(15))
        assert not self._one("cmp", (7, 7), operator="<>", operands=lit(7))

    def test_between(self):
        zone = (10, 20)
        ops = (SargOperand(value=21), SargOperand(value=30))
        assert not self._one("between", zone, operands=ops)
        ops = (SargOperand(value=20), SargOperand(value=30))
        assert self._one("between", zone, operands=ops)
        # NOT BETWEEN prunes only chunks entirely inside the range.
        ops = (SargOperand(value=0), SargOperand(value=30))
        assert not self._one("between", zone, operands=ops, negated=True)
        ops = (SargOperand(value=15), SargOperand(value=30))
        assert self._one("between", zone, operands=ops, negated=True)

    def test_in_list(self):
        zone = (10, 20)
        ops = (SargOperand(value=1), SargOperand(value=15))
        assert self._one("in", zone, operands=ops)
        ops = (SargOperand(value=1), SargOperand(value=30))
        assert not self._one("in", zone, operands=ops)
        # NOT IN prunes only a constant chunk whose value is excluded.
        assert not self._one("in", (7, 7), operands=(SargOperand(value=7),),
                             negated=True)
        assert self._one("in", (7, 8), operands=(SargOperand(value=7),),
                         negated=True)

    def test_parameters_resolved_per_call(self):
        conjunct = SargConjunct(column="a", kind="cmp", operator="=",
                                operands=(SargOperand(param_index=0),))
        assert chunk_survives([conjunct], lambda _: (10, 20), [15])
        assert not chunk_survives([conjunct], lambda _: (10, 20), [25])

    def test_missing_zone_map_keeps_chunk(self):
        conjunct = SargConjunct(column="a", kind="cmp", operator="=",
                                operands=(SargOperand(value=5),))
        assert chunk_survives([conjunct], lambda _: None, ())

    def test_incomparable_types_keep_chunk(self):
        conjunct = SargConjunct(column="a", kind="cmp", operator="<",
                                operands=(SargOperand(value="zzz"),))
        assert chunk_survives([conjunct], lambda _: (1, 2), ())

    def test_nan_operand_never_prunes(self):
        # NOT BETWEEN NaN AND NaN matches every row at execution time
        # (NOT(f >= NaN AND f <= NaN) is true), but every zone comparison
        # against NaN is False — a NaN operand must disable pruning.
        nan = float("nan")
        conjunct = SargConjunct(column="f", kind="between",
                                operands=(SargOperand(param_index=0),
                                          SargOperand(param_index=1)),
                                negated=True)
        assert chunk_survives([conjunct], lambda _: (1.0, 2.0), [nan, nan])
        cmp = SargConjunct(column="f", kind="cmp", operator="=",
                           operands=(SargOperand(value=nan),))
        assert chunk_survives([cmp], lambda _: (1.0, 2.0), ())

    def test_nan_binding_end_to_end(self):
        db = Database()
        db.catalog.create_table("t", [("f", SQLType.FLOAT64)], chunk_rows=4)
        db.insert("t", [(float(i),) for i in range(16)])
        sql = "select count(*) as c from t where f not between ? and ?"
        nan = float("nan")
        for mode in ALL_MODES:
            pruned = db.execute(sql, mode=mode, params=[nan, nan])
            unpruned = db.execute(sql, mode=mode, params=[nan, nan],
                                  options=ExecOptions(use_pruning=False))
            assert pruned.rows == unpruned.rows, mode

    def test_decimal_zone_bounds_are_decoded(self):
        # Stored scaled by 100: raw (100, 200) is logical (1.0, 2.0).
        conjunct = SargConjunct(column="a", kind="cmp", operator=">",
                                operands=(SargOperand(value=2.5),),
                                decimal_storage=True)
        assert not chunk_survives([conjunct], lambda _: (100, 200), ())
        conjunct = SargConjunct(column="a", kind="cmp", operator=">",
                                operands=(SargOperand(value=1.5),),
                                decimal_storage=True)
        assert chunk_survives([conjunct], lambda _: (100, 200), ())


# --------------------------------------------------------------------------- #
# scan planning + dispatcher alignment
# --------------------------------------------------------------------------- #
class TestScanPlanning:
    def test_plan_table_scan_prunes_sealed_chunks(self):
        table = make_table(chunk_rows=8)
        table.insert_rows([(i,) for i in range(30)])  # 3 sealed + tail of 6
        sargs = [SargConjunct(column="a", kind="cmp", operator="=",
                              operands=(SargOperand(value=9),))]
        plan = plan_table_scan(table, sargs, table.num_rows, ())
        # Chunk 1 ([8, 16)) survives; the unsealed tail always survives.
        assert plan.ranges == ((8, 16), (24, 30))
        assert plan.chunks_total == 4
        assert plan.chunks_pruned == 2
        assert plan.chunks_scanned == 2
        assert plan.rows_to_scan == 14

    def test_use_pruning_false_scans_everything(self):
        table = make_table(chunk_rows=8)
        table.insert_rows([(i,) for i in range(30)])
        sargs = [SargConjunct(column="a", kind="cmp", operator="=",
                              operands=(SargOperand(value=9),))]
        plan = plan_table_scan(table, sargs, table.num_rows, (),
                               use_pruning=False)
        assert plan.chunks_pruned == 0
        assert plan.rows_to_scan == 30

    def test_dispatcher_honours_ranges_and_chunk_alignment(self):
        dispatcher = MorselDispatcher(morsel_size=8,
                                      ranges=[(8, 16), (32, 40), (56, 60)])
        seen = []
        while True:
            morsel = dispatcher.next_morsel()
            if morsel is None:
                break
            seen.append((morsel.begin, morsel.end))
        assert seen == [(8, 16), (32, 40), (56, 60)]
        assert dispatcher.total_rows == 20
        assert dispatcher.exhausted

    def test_dispatcher_small_morsels_stay_within_ranges(self):
        dispatcher = MorselDispatcher(morsel_size=3, ranges=[(0, 8), (16, 24)])
        covered = []
        while True:
            morsel = dispatcher.next_morsel()
            if morsel is None:
                break
            assert (morsel.begin < 8) == (morsel.end <= 8)
            covered.extend(range(morsel.begin, morsel.end))
        assert covered == list(range(0, 8)) + list(range(16, 24))

    def test_dispatcher_backwards_compatible_span(self):
        dispatcher = MorselDispatcher(100, morsel_size=64)
        first = dispatcher.next_morsel()
        second = dispatcher.next_morsel()
        assert (first.begin, first.end) == (0, 64)
        assert (second.begin, second.end) == (64, 100)
        assert dispatcher.next_morsel() is None


# --------------------------------------------------------------------------- #
# end-to-end pruning across every mode
# --------------------------------------------------------------------------- #
class TestPruningEndToEnd:
    @pytest.fixture()
    def clustered_db(self):
        db = Database()
        db.catalog.create_table("events", [("ts", SQLType.INT64),
                                           ("payload", SQLType.FLOAT64)],
                                chunk_rows=256)
        db.insert("events", [(i, float(i % 97)) for i in range(20_000)])
        return db

    def test_selective_scan_prunes_most_chunks_in_every_mode(self,
                                                             clustered_db):
        sql = "select ts, payload from events where ts between 512 and 767"
        expected = None
        for mode in ALL_MODES:
            pruned = clustered_db.execute(sql, mode=mode)
            unpruned = clustered_db.execute(
                sql, options=ExecOptions(mode=mode, use_pruning=False))
            assert sorted(pruned.rows) == sorted(unpruned.rows)
            if expected is None:
                expected = sorted(pruned.rows)
                assert len(expected) == 256
            assert sorted(pruned.rows) == expected
            stats = pruned.stats
            total = stats["chunks_pruned"] + stats["chunks_scanned"]
            assert stats["chunks_pruned"] / total > 0.8, mode
            assert unpruned.stats["chunks_pruned"] == 0

    def test_parallel_execution_prunes(self, clustered_db):
        sql = "select count(*) from events where ts < 300"
        result = clustered_db.execute(sql, mode="optimized", threads=4)
        assert result.rows == [(300,)]
        assert result.stats["chunks_pruned"] > 0

    def test_cached_plan_reprunes_per_binding(self, clustered_db):
        prepared = clustered_db.prepare_query(
            "select count(*) from events where ts between ? and ?")
        low = prepared.execute(mode="bytecode", params=[0, 255])
        high = prepared.execute(mode="bytecode", params=[19_000, 19_999])
        assert low.rows == [(256,)]
        assert high.rows == [(1000,)]
        assert low.timings.chunks_pruned > 0
        assert high.timings.chunks_pruned > 0
        # Different bindings keep different chunks: the pruning decision is
        # per execution, not baked into the cached plan.
        assert low.timings.chunks_scanned < 5
        assert high.timings.chunks_scanned < 6

    def test_pruning_never_drops_tail_rows(self, clustered_db):
        clustered_db.insert("events", [(50, 1.0)])  # lands in the open tail
        result = clustered_db.execute(
            "select count(*) from events where ts = 50")
        assert result.rows == [(2,)]

    def test_aggregation_pipeline_prunes(self, clustered_db):
        result = clustered_db.execute(
            "select sum(payload) from events where ts >= 19744")
        assert result.stats["chunks_pruned"] > 70
        unpruned = clustered_db.execute(
            "select sum(payload) from events where ts >= 19744",
            options=ExecOptions(use_pruning=False))
        assert result.rows == unpruned.rows


class TestDecimalBoundaryPruning:
    def test_decimal_equality_at_chunk_extremes_is_never_mispruned(self):
        """The zone check must decode DECIMAL bounds exactly as the tiers
        decode values (raw * 0.01); raw / 100 differs in the last ulp for
        many raw values and would prune a chunk whose extreme matches."""
        db = Database()
        db.catalog.create_table("t", [("p", SQLType.DECIMAL)], chunk_rows=8)
        # raw = 35 is one of the values where 35 * 0.01 != 35 / 100.
        db.insert("t", [(0.35,)] + [(i + 100.0,) for i in range(15)])
        predicate = 35 * 0.01  # what the execution tiers compute
        result = db.execute("select count(*) from t where p = ?",
                            params=[predicate])
        unpruned = db.execute(
            "select count(*) from t where p = ?",
            options=ExecOptions(use_pruning=False), params=[predicate])
        assert result.rows == unpruned.rows == [(1,)]


class TestSealPublicationRace:
    def test_zone_map_reads_race_chunk_sealing(self):
        """Regression: sealing must append the zone-map/numpy bookkeeping
        slots *before* the row count says the chunk is sealed, or lock-free
        readers hit IndexError in the seal window.  A tiny GIL switch
        interval makes the few-bytecode window practically certain to be
        observed."""
        import sys

        table = make_table(chunk_rows=8)
        errors: list[BaseException] = []
        stop = threading.Event()

        def reader():
            try:
                while not stop.is_set():
                    sealed = table.num_sealed_chunks
                    if sealed:
                        assert table.zone_map("a", sealed - 1) is not None
                        assert len(table.numpy_chunk("a", sealed - 1)) == 8
            except BaseException as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=reader) for _ in range(4)]
        interval = sys.getswitchinterval()
        sys.setswitchinterval(1e-6)
        try:
            for thread in threads:
                thread.start()
            for i in range(30_000):
                table.insert_rows([(i,)])
                if errors:
                    break
        finally:
            stop.set()
            for thread in threads:
                thread.join()
            sys.setswitchinterval(interval)
        assert not errors, errors[:3]

    def test_coalesced_ranges_cover_adjacent_survivors(self):
        table = make_table(chunk_rows=8)
        table.insert_rows([(i,) for i in range(32)])  # 4 sealed chunks
        sargs = [SargConjunct(column="a", kind="cmp", operator=">=",
                              operands=(SargOperand(value=8),))]
        plan = plan_table_scan(table, sargs, table.num_rows, ())
        # Chunks 1..3 survive and are coalesced into one range.
        assert plan.ranges == ((8, 32),)
        assert plan.chunks_pruned == 1
        assert plan.chunks_scanned == 3

    def test_numpy_ranges_spanning_chunks(self):
        table = make_table(chunk_rows=8)
        table.insert_rows([(i,) for i in range(30)])
        assert table.numpy_ranges("a", [(4, 20), (24, 30)]).tolist() == \
            list(range(4, 20)) + list(range(24, 30))
        assert table.numpy_ranges("a", []).tolist() == []
