"""Unit tests for the optimizer/planner and the code generator."""

import pytest

from repro import Database, SQLType
from repro.codegen import CodeGenerator, QueryState
from repro.ir import verify_module
from repro.optimizer import Planner
from repro.plan.logical import (
    LogicalAggregate,
    LogicalJoin,
    LogicalLimit,
    LogicalProject,
    LogicalScan,
    LogicalSort,
    explain,
)
from repro.plan.physical import (
    AggregateSink,
    HashBuildSink,
    OutputSink,
    PhysFilter,
    PhysHashProbe,
    TableSource,
)
from repro.semantics import Binder
from repro.sqlparser import parse


@pytest.fixture()
def db():
    database = Database()
    database.create_table("facts", [("f_id", SQLType.INT64),
                                    ("f_dim", SQLType.INT64),
                                    ("f_other", SQLType.INT64),
                                    ("f_value", SQLType.FLOAT64)])
    database.create_table("dim", [("d_id", SQLType.INT64),
                                  ("d_name", SQLType.STRING)])
    database.create_table("other", [("x_id", SQLType.INT64),
                                    ("x_flag", SQLType.INT64)])
    database.insert("dim", [(i, f"dim{i}") for i in range(10)])
    database.insert("other", [(i, i % 2) for i in range(20)])
    database.insert("facts", [(i, i % 10, i % 20, float(i)) for i in range(500)])
    return database


def plan(db, sql):
    bound = Binder(db.catalog).bind(parse(sql))
    return Planner(db.catalog).plan(bound)


class TestPlanner:
    def test_scan_only_query_single_pipeline(self, db):
        result = plan(db, "select f_id from facts where f_id < 10")
        assert len(result.physical.pipelines) == 1
        pipeline = result.physical.pipelines[0]
        assert isinstance(pipeline.source, TableSource)
        assert isinstance(pipeline.sink, OutputSink)
        assert any(isinstance(op, PhysFilter) for op in pipeline.operators)

    def test_join_creates_build_and_probe_pipelines(self, db):
        result = plan(db, "select d_name, f_value from facts, dim "
                          "where f_dim = d_id")
        kinds = [type(p.sink).__name__ for p in result.physical.pipelines]
        assert kinds == ["HashBuildSink", "OutputSink"]
        probe_pipeline = result.physical.pipelines[-1]
        assert any(isinstance(op, PhysHashProbe)
                   for op in probe_pipeline.operators)

    def test_driver_is_largest_table(self, db):
        result = plan(db, "select d_name, f_value from facts, dim "
                          "where f_dim = d_id")
        probe_pipeline = result.physical.pipelines[-1]
        assert probe_pipeline.source.table.name == "facts"

    def test_aggregation_adds_hash_table_scan_pipeline(self, db):
        result = plan(db, "select f_dim, sum(f_value) from facts group by f_dim")
        labels = [p.label for p in result.physical.pipelines]
        assert labels[-1] == "hash table scan"
        assert isinstance(result.physical.pipelines[0].sink, AggregateSink)

    def test_three_way_join_pipeline_count(self, db):
        result = plan(db, "select count(*) from facts, dim, other "
                          "where f_dim = d_id and f_other = x_id")
        # two builds + one aggregating probe + one output scan
        assert len(result.physical.pipelines) == 4

    def test_filter_pushdown_into_build_side(self, db):
        result = plan(db, "select d_name, f_value from facts, dim "
                          "where f_dim = d_id and d_name = 'dim3'")
        build = result.physical.pipelines[0]
        assert isinstance(build.sink, HashBuildSink)
        assert any(isinstance(op, PhysFilter) for op in build.operators)

    def test_payload_contains_needed_columns_only(self, db):
        result = plan(db, "select d_name, f_value from facts, dim "
                          "where f_dim = d_id")
        build = result.physical.pipelines[0].sink
        payload_names = [c.column for c in build.payload_columns]
        assert "d_name" in payload_names

    def test_logical_plan_shape(self, db):
        result = plan(db, "select f_dim, sum(f_value) as s from facts, dim "
                          "where f_dim = d_id group by f_dim "
                          "order by s desc limit 5")
        node = result.logical
        assert isinstance(node, LogicalLimit)
        assert isinstance(node.child, LogicalSort)
        text = explain(result.logical)
        assert "HashJoin" in text and "Aggregate" in text and "Scan" in text

    def test_residual_or_predicate_kept(self, db):
        result = plan(db, "select count(*) from facts, dim where f_dim = d_id "
                          "and (d_name = 'dim1' or f_value > 100.0)")
        probe_pipeline = result.physical.pipelines[1]
        filters = [op for op in probe_pipeline.operators
                   if isinstance(op, PhysFilter)]
        assert filters  # the OR predicate is applied after the probe

    def test_estimates_positive(self, db):
        result = plan(db, "select f_id from facts where f_id < 10")
        assert result.physical.pipelines[0].estimated_rows >= 1


class TestCodeGenerator:
    def generate(self, db, sql):
        bound = Binder(db.catalog).bind(parse(sql))
        planning = Planner(db.catalog).plan(bound)
        state = QueryState(planning.physical)
        return CodeGenerator(planning.physical, state).generate()

    def test_one_worker_per_pipeline(self, db):
        generated = self.generate(db, "select f_dim, sum(f_value) from facts "
                                      "group by f_dim")
        assert len(generated.module.functions) == len(generated.pipelines)
        for name in generated.module.functions:
            assert name.startswith("worker")

    def test_module_verifies(self, db):
        generated = self.generate(
            db, "select d_name, sum(f_value) from facts, dim "
                "where f_dim = d_id and f_value > 10.0 "
                "group by d_name order by d_name")
        verify_module(generated.module)

    def test_worker_signature(self, db):
        generated = self.generate(db, "select f_id from facts")
        worker = generated.pipelines[0].function
        assert [arg.name for arg in worker.args] == ["state", "morsel_begin",
                                                     "morsel_end"]

    def test_instruction_count_scales_with_aggregates(self, db):
        small = self.generate(db, "select sum(f_value) from facts")
        large = self.generate(
            db, "select " + ", ".join(f"sum(f_value * {i})"
                                      for i in range(1, 21)) + " from facts")
        assert large.instruction_count > small.instruction_count

    def test_finish_step_only_for_aggregates(self, db):
        generated = self.generate(db, "select f_dim, count(*) from facts "
                                      "group by f_dim")
        finishes = [p.finish is not None for p in generated.pipelines]
        assert finishes == [True, False]

    def test_codegen_seconds_recorded(self, db):
        generated = self.generate(db, "select f_id from facts")
        assert generated.codegen_seconds > 0
