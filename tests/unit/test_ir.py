"""Unit tests for the SSA IR: builder, verifier, printer, CFG analyses."""

import pytest

from repro.errors import IRError, IRVerificationError
from repro.ir import (
    Constant,
    ExternFunction,
    Function,
    IRBuilder,
    Module,
    compute_dominator_tree,
    find_loops,
    print_function,
    reverse_postorder,
    verify_function,
)
from repro.ir.instructions import BinaryInst, CompareInst, PhiInst
from repro.ir.types import f64, i1, i64, ptr, void, wrap_integer, integer_range


def build_loop_function():
    """for i in [begin, end): call sink(i * 2)"""
    sink_calls = []
    sink = ExternFunction("sink", [i64], void, sink_calls.append)
    function = Function("looper", [ptr, i64, i64], ["state", "begin", "end"])
    builder = IRBuilder(function)
    index, _, _, close = builder.count_loop(function.args[1],
                                            function.args[2])
    doubled = builder.mul(index, builder.const_i64(2))
    builder.call(sink, [doubled])
    close()
    builder.ret()
    return function, sink_calls


class TestTypes:
    def test_wrap_integer_wraps(self):
        assert wrap_integer(2 ** 63, i64) == -(2 ** 63)
        assert wrap_integer(-(2 ** 63) - 1, i64) == 2 ** 63 - 1

    def test_wrap_bool(self):
        assert wrap_integer(3, i1) == 1

    def test_integer_range(self):
        low, high = integer_range(i64)
        assert low == -(2 ** 63) and high == 2 ** 63 - 1

    def test_integer_range_rejects_float(self):
        with pytest.raises(IRError):
            integer_range(f64)


class TestBuilder:
    def test_loop_function_verifies(self):
        function, _ = build_loop_function()
        verify_function(function)

    def test_instruction_count(self):
        function, _ = build_loop_function()
        assert function.instruction_count() > 5

    def test_binary_type_mismatch_rejected(self):
        with pytest.raises(IRError):
            BinaryInst("add", Constant(i64, 1), Constant(f64, 1.0))

    def test_float_opcode_on_int_rejected(self):
        with pytest.raises(IRError):
            BinaryInst("fadd", Constant(i64, 1), Constant(i64, 1))

    def test_compare_produces_bool(self):
        cmp = CompareInst("lt", Constant(i64, 1), Constant(i64, 2))
        assert cmp.type is i1

    def test_checked_arith_creates_error_edge(self):
        function = Function("f", [i64, i64], ["a", "b"], i64)
        builder = IRBuilder(function)
        error = builder.new_block("error")
        result = builder.checked_add(function.args[0], function.args[1], error)
        builder.ret(result)
        error_builder = IRBuilder(function, error)
        error_builder.unreachable()
        verify_function(function)
        opcodes = [inst.opcode for inst in function.instructions()]
        assert "ovf.add" in opcodes

    def test_printer_produces_text(self):
        function, _ = build_loop_function()
        text = print_function(function)
        assert "define" in text and "phi" in text and "condbr" in text


class TestModule:
    def test_duplicate_function_rejected(self):
        module = Module("m")
        module.add_function(Function("f", [], []))
        with pytest.raises(IRError):
            module.add_function(Function("f", [], []))

    def test_extern_deduplicated(self):
        module = Module("m")
        extern = ExternFunction("rt", [i64], void, lambda x: None)
        assert module.declare_extern(extern) is module.declare_extern(extern)

    def test_instruction_count_aggregates(self):
        module = Module("m")
        function, _ = build_loop_function()
        module.add_function(function)
        assert module.instruction_count() == function.instruction_count()


class TestVerifier:
    def test_missing_terminator_detected(self):
        function = Function("f", [], [])
        block = function.add_block("entry")
        block.append(BinaryInst("add", Constant(i64, 1), Constant(i64, 2)))
        with pytest.raises(IRVerificationError):
            verify_function(function)

    def test_use_before_def_detected(self):
        function = Function("f", [i64], ["a"], i64)
        builder = IRBuilder(function)
        orphan = BinaryInst("add", function.args[0], Constant(i64, 1))
        # Use the instruction as an operand without ever inserting it.
        builder.ret(orphan)
        with pytest.raises(IRVerificationError):
            verify_function(function)

    def test_phi_incoming_must_match_predecessors(self):
        function = Function("f", [i64], ["a"], i64)
        builder = IRBuilder(function)
        other = builder.new_block("other")
        target = builder.new_block("target")
        builder.br(target)
        other_builder = IRBuilder(function, other)
        other_builder.br(target)
        target_builder = IRBuilder(function, target)
        phi = target_builder.phi(i64)
        phi.add_incoming(function.args[0], function.blocks[0])
        # missing incoming for "other"
        target_builder.ret(phi)
        with pytest.raises(IRVerificationError):
            verify_function(function)


class TestAnalysis:
    def test_reverse_postorder_starts_at_entry(self):
        function, _ = build_loop_function()
        order = reverse_postorder(function)
        assert order[0] is function.entry_block

    def test_rpo_places_blocks_after_forward_predecessors(self):
        function, _ = build_loop_function()
        order = reverse_postorder(function)
        index = {id(b): i for i, b in enumerate(order)}
        dom = compute_dominator_tree(function, order)
        for block in order:
            for succ in block.successors():
                if not dom.dominates(succ, block):  # ignore back edges
                    assert index[id(succ)] > index[id(block)]

    def test_dominator_tree_entry_dominates_all(self):
        function, _ = build_loop_function()
        order = reverse_postorder(function)
        dom = compute_dominator_tree(function, order)
        for block in order:
            assert dom.dominates(function.entry_block, block)

    def test_dominates_is_reflexive_and_antisymmetric(self):
        function, _ = build_loop_function()
        order = reverse_postorder(function)
        dom = compute_dominator_tree(function, order)
        for a in order:
            assert dom.dominates(a, a)
            for b in order:
                if a is not b and dom.dominates(a, b) and dom.dominates(b, a):
                    pytest.fail("two distinct blocks dominate each other")

    def test_loop_detection_finds_scan_loop(self):
        function, _ = build_loop_function()
        info = find_loops(function)
        # The pseudo root loop plus the counted loop.
        assert len(info.loops) == 2
        real = [loop for loop in info.loops if loop.depth == 1]
        assert len(real) == 1
        head_names = {loop.head.name for loop in real}
        assert any("head" in name for name in head_names)

    def test_loop_depth_of_nested_loops(self):
        # Build a two-level nested loop manually.
        function = Function("nested", [i64], ["n"])
        builder = IRBuilder(function)
        outer_index, _, _, close_outer = builder.count_loop(
            builder.const_i64(0), function.args[0], "outer")
        inner_index, _, _, close_inner = builder.count_loop(
            builder.const_i64(0), outer_index, "inner")
        close_inner()
        close_outer()
        builder.ret()
        verify_function(function)
        info = find_loops(function)
        depths = {loop.depth for loop in info.loops}
        assert {0, 1, 2} <= depths
