"""Unit tests for the partition-parallel breaker runtime.

Covers the pieces the integration/property tests exercise only end-to-end:
the partial/merge lifecycle helpers, worker-context creation, the sealed
containers' identity guarantees across configure/reset (what keeps cached
plans executable), option plumbing and the breaker metrics.
"""

from __future__ import annotations

import pytest

from repro import Database, SQLType
from repro.codegen.runtime import (
    BreakerRun,
    QueryState,
    WorkerContext,
    combine_cells,
    initial_cells,
    merge_agg_partition,
    merge_join_partition,
    round_up_pow2,
)
from repro.options import ExecOptions
from repro.plan.physical import AggregateSpec


def make_spec(function, result_type=SQLType.INT64, argument=None):
    return AggregateSpec(function=function, argument=argument,
                         result_type=result_type)


class TestMergeHelpers:
    def test_round_up_pow2(self):
        assert [round_up_pow2(v) for v in (0, 1, 2, 3, 4, 5, 8, 9)] == \
            [1, 1, 2, 4, 4, 8, 8, 16]

    def test_merge_join_partition_extends_in_contributor_order(self):
        target: dict = {}
        merge_join_partition(target, [{1: [("a",)], 2: [("b",)]},
                                      {1: [("c",)]}])
        assert target == {1: [("a",), ("c",)], 2: [("b",)]}

    def test_merge_join_partition_adopts_first_bucket(self):
        bucket = [("a",)]
        target: dict = {}
        merge_join_partition(target, [{1: bucket}])
        assert target[1] is bucket

    def test_combine_and_merge_agg_cells(self):
        specs = [make_spec("count"), make_spec("sum"),
                 make_spec("avg", SQLType.FLOAT64),
                 make_spec("min"), make_spec("max")]
        left = initial_cells(specs)
        right = initial_cells(specs)
        # fold two "rows" into left, one into right, by hand
        left[0], left[1], left[2], left[3], left[4] = 2, 30, [30.0, 2], 10, 20
        right[0], right[1], right[2], right[3], right[4] = 1, 5, [5.0, 1], 5, 5
        combine_cells(specs, left, right)
        assert left == [3, 35, [35.0, 3], 5, 20]
        # None (never-seen) min/max cells lose against any value.
        empty = initial_cells(specs)
        combine_cells(specs, empty, [1, 7, [7.0, 1], 7, 7])
        assert empty[3] == 7 and empty[4] == 7

    def test_merge_agg_partition_combines_matching_keys(self):
        specs = [make_spec("count"), make_spec("sum")]
        target: dict = {}
        merge_agg_partition(specs, target,
                            [{"k": [1, 10]}, {"k": [2, 5], "j": [1, 1]}])
        assert target == {"k": [3, 15], "j": [1, 1]}


@pytest.fixture()
def grouped_db():
    db = Database(morsel_size=64, workers=4)
    db.create_table("t", [("k", SQLType.INT64), ("v", SQLType.INT64)])
    db.insert("t", [(i % 9, i) for i in range(3000)])
    yield db
    db.close()


GROUP_SQL = "select k, count(*), sum(v) from t group by k"


class TestQueryStateBreakers:
    def _state(self, db) -> QueryState:
        generated, _, _ = db.generate(GROUP_SQL)
        return generated.state

    def test_agg_locks_is_gone(self, grouped_db):
        state = self._state(grouped_db)
        assert not hasattr(state, "agg_locks")

    def test_configure_preserves_partition_list_identity(self, grouped_db):
        state = self._state(grouped_db)
        lists = {agg_id: parts
                 for agg_id, parts in state.agg_partitions.items()}
        state.configure_breakers(partitions=8)
        assert state.partition_count == 8
        for agg_id, parts in state.agg_partitions.items():
            assert parts is lists[agg_id]
            assert len(parts) == 8
        state.configure_breakers(partitions=3)   # rounded up
        assert state.partition_count == 4
        state.configure_breakers(use_partitioned=False)
        assert state.partition_count == 1
        for agg_id, parts in state.agg_partitions.items():
            assert parts is lists[agg_id]

    def test_reset_clears_contents_keeps_dicts(self, grouped_db):
        state = self._state(grouped_db)
        state.configure_breakers(partitions=2)
        parts = next(iter(state.agg_partitions.values()))
        dicts = list(parts)
        parts[0]["key"] = [1]
        state.reset()
        assert parts[0] == {} and [d is o for d, o in zip(parts, dicts)]

    def test_new_context_sizes_partials_to_current_layout(self, grouped_db):
        generated, _, _ = grouped_db.generate(GROUP_SQL)
        state = generated.state
        state.configure_breakers(partitions=4)
        pipeline = generated.pipelines[0].pipeline
        context = state.new_context(pipeline)
        assert isinstance(context, WorkerContext)
        (parts,) = context.aggs.values()
        assert len(parts) == 4 and context.joins == {}

    def test_breaker_run_contexts_are_slot_stable(self, grouped_db):
        generated, _, _ = grouped_db.generate(GROUP_SQL)
        state = generated.state
        run = BreakerRun(state, generated.pipelines[0].pipeline, max_slots=3)
        first = run.context(1)
        assert run.context(1) is first
        assert run.context(2) is not first
        state.use_partitioned = False
        assert run.context(0) is None


class TestOptionWiring:
    def test_options_defaults_and_accessors(self):
        options = ExecOptions()
        assert options.breaker_partitions is None
        assert options.use_partitioned_breakers is True
        merged = options.merged(breaker_partitions=6,
                                use_partitioned_breakers=False)
        assert merged.breaker_partitions == 6
        assert merged.use_partitioned_breakers is False

    def test_database_resolves_default_partition_count(self):
        db = Database(workers=5)
        try:
            assert db.breaker_partitions_for(ExecOptions()) == 8
            assert db.breaker_partitions_for(
                ExecOptions(breaker_partitions=3)) == 4
        finally:
            db.close()

    def test_partition_count_flows_into_stats(self, grouped_db):
        result = grouped_db.execute(
            GROUP_SQL, options=ExecOptions(mode="bytecode",
                                           breaker_partitions=16))
        stats = result.stats
        assert stats["breaker_partitions"] == 16
        assert stats["breaker_partial_entries"] >= 9
        assert stats["breaker_lock_acquisitions"] == 0
        assert stats["breaker_merge_seconds"] >= 0.0
        pipeline = result.pipelines[0]
        assert pipeline.breaker_partitions == 16
        assert pipeline.breaker_partial_entries >= 9

    def test_escape_hatch_counts_fallback_locks(self, grouped_db):
        result = grouped_db.execute(
            GROUP_SQL, options=ExecOptions(
                mode="bytecode", use_partitioned_breakers=False))
        # No partials exist on the single-table path: partitions report 0.
        assert result.stats["breaker_partitions"] == 0
        assert result.stats["breaker_partial_entries"] == 0
        assert result.stats["breaker_lock_acquisitions"] == 3000

    def test_scan_only_pipelines_report_no_partitions(self, grouped_db):
        result = grouped_db.execute(
            "select v from t where v < 10",
            options=ExecOptions(mode="bytecode", threads=2))
        # The output pipeline's partials are plain row buffers, not hash
        # partitions.
        assert result.stats["breaker_partitions"] == 0
        assert result.stats["breaker_lock_acquisitions"] == 0

    def test_session_and_prepared_accept_breaker_options(self, grouped_db):
        session = grouped_db.session(
            options=ExecOptions(mode="bytecode", breaker_partitions=2))
        assert session.breaker_partitions == 2
        expected = grouped_db.execute(GROUP_SQL, mode="optimized").rows
        assert session.execute(GROUP_SQL).rows == expected
        prepared = grouped_db.prepare_query(GROUP_SQL)
        hot = prepared.execute(options=ExecOptions(
            mode="adaptive", threads=2, breaker_partitions=4))
        assert hot.rows == expected
        cold = prepared.execute(options=ExecOptions(
            mode="adaptive", use_partitioned_breakers=False))
        assert cold.rows == expected
