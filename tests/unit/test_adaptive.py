"""Unit tests for the adaptive execution framework."""

import time
from collections import Counter

import pytest

from repro import Database, SQLType
from repro.adaptive import (
    AdaptivePolicy,
    Decision,
    ExecutionMode,
    ExecutionTrace,
    FunctionHandle,
    MorselDispatcher,
    PipelineProgress,
    TraceEvent,
    render_trace,
)
from repro.adaptive.simulation import (
    PipelineProfile,
    QueryProfile,
    cost_model_from_profiles,
    simulate_adaptive,
    simulate_static,
)
from repro.backend.cost_model import CostModel, TierEstimate
from repro.ir import ExternFunction, Function, IRBuilder
from repro.ir.types import i64, ptr, void


class TestMorselDispatcher:
    def test_covers_range_exactly_once(self):
        dispatcher = MorselDispatcher(1000, morsel_size=64, initial_size=8)
        covered = []
        while True:
            morsel = dispatcher.next_morsel()
            if morsel is None:
                break
            covered.append((morsel.begin, morsel.end))
        assert covered[0][0] == 0
        assert covered[-1][1] == 1000
        for (b1, e1), (b2, e2) in zip(covered, covered[1:]):
            assert e1 == b2  # contiguous, no overlap, no gap

    def test_growing_morsel_size(self):
        dispatcher = MorselDispatcher(10_000, morsel_size=4096, initial_size=64)
        sizes = []
        while True:
            morsel = dispatcher.next_morsel()
            if morsel is None:
                break
            sizes.append(morsel.size)
        assert sizes[0] == 64
        assert max(sizes) == 4096
        # non-decreasing, apart from the final (possibly partial) morsel
        body = sizes[:-1]
        assert body == sorted(body)

    def test_empty_input(self):
        dispatcher = MorselDispatcher(0, morsel_size=10)
        assert dispatcher.next_morsel() is None
        assert dispatcher.exhausted

    def test_invalid_morsel_size(self):
        with pytest.raises(ValueError):
            MorselDispatcher(10, morsel_size=0)


class TestProgress:
    def test_rates_and_remaining(self):
        progress = PipelineProgress(total_tuples=1000, num_threads=2)
        progress.record_morsel(0, 100, 0.01)
        progress.record_morsel(1, 300, 0.01)
        assert progress.remaining_tuples == 600
        assert progress.average_rate() == pytest.approx((10_000 + 30_000) / 2)

    def test_reset_rates(self):
        progress = PipelineProgress(1000, 1)
        progress.record_morsel(0, 100, 0.01)
        progress.reset_rates()
        assert progress.average_rate() is None
        assert progress.remaining_tuples == 900  # progress itself is kept


def _policy_model():
    """A cost model with easy-to-reason-about numbers."""
    return CostModel(estimates={
        "bytecode": TierEstimate(0.0, 0.0, 1.0),
        "unoptimized": TierEstimate(0.010, 0.0, 4.0),
        "optimized": TierEstimate(0.100, 0.0, 8.0),
    })


class TestPolicy:
    def make_progress(self, total, processed, rate):
        progress = PipelineProgress(total, 1)
        progress.record_morsel(0, processed, processed / rate)
        return progress

    def test_small_remaining_work_stays_interpreted(self):
        policy = AdaptivePolicy(_policy_model())
        progress = self.make_progress(total=2_000, processed=1_000,
                                      rate=100_000)
        evaluation = policy.evaluate(progress, ExecutionMode.BYTECODE,
                                     instruction_count=100, active_workers=1,
                                     elapsed_seconds=0.01)
        assert evaluation.decision is Decision.DO_NOTHING

    def test_large_remaining_work_compiles_optimized(self):
        policy = AdaptivePolicy(_policy_model())
        progress = self.make_progress(total=50_000_000, processed=10_000,
                                      rate=100_000)
        evaluation = policy.evaluate(progress, ExecutionMode.BYTECODE,
                                     instruction_count=100, active_workers=4,
                                     elapsed_seconds=0.05)
        assert evaluation.decision is Decision.OPTIMIZED

    def test_medium_work_prefers_unoptimized(self):
        policy = AdaptivePolicy(_policy_model())
        progress = self.make_progress(total=60_000, processed=20_000,
                                      rate=100_000)
        evaluation = policy.evaluate(progress, ExecutionMode.BYTECODE,
                                     instruction_count=100, active_workers=1,
                                     elapsed_seconds=0.05)
        assert evaluation.decision is Decision.UNOPTIMIZED

    def test_no_decision_before_first_delay(self):
        policy = AdaptivePolicy(_policy_model())
        progress = self.make_progress(total=50_000_000, processed=10_000,
                                      rate=100_000)
        evaluation = policy.evaluate(progress, ExecutionMode.BYTECODE, 100, 4,
                                     elapsed_seconds=0.0001)
        assert evaluation.decision is Decision.DO_NOTHING

    def test_never_downgrades(self):
        policy = AdaptivePolicy(_policy_model())
        progress = self.make_progress(total=1_000_000, processed=10_000,
                                      rate=100_000)
        evaluation = policy.evaluate(progress, ExecutionMode.OPTIMIZED, 100, 1,
                                     elapsed_seconds=0.05)
        assert evaluation.decision is Decision.DO_NOTHING

    def test_extrapolation_accounts_for_other_threads(self):
        # With many workers the compile time is hidden, so switching pays off
        # earlier than with a single worker.
        policy = AdaptivePolicy(_policy_model())
        progress_single = self.make_progress(2_000_000, 10_000, 100_000)
        single = policy.evaluate(progress_single, ExecutionMode.BYTECODE, 100,
                                 active_workers=1, elapsed_seconds=0.05)
        progress_many = self.make_progress(2_000_000, 10_000, 100_000)
        many = policy.evaluate(progress_many, ExecutionMode.BYTECODE, 100,
                               active_workers=8, elapsed_seconds=0.05)
        assert many.optimized_seconds < single.optimized_seconds


class TestFunctionHandle:
    def _worker(self):
        out = []
        sink = ExternFunction("sink", [i64], void, out.append)
        function = Function("worker", [ptr, i64, i64],
                            ["state", "begin", "end"])
        builder = IRBuilder(function)
        index, _, _, close = builder.count_loop(function.args[1],
                                                function.args[2])
        builder.call(sink, [builder.mul(index, index)])
        close()
        builder.ret()
        return function, out

    def test_starts_in_bytecode(self):
        function, _ = self._worker()
        handle = FunctionHandle(function)
        _, mode = handle.executable()
        assert mode is ExecutionMode.BYTECODE

    def test_compile_switches_mode(self):
        function, out = self._worker()
        handle = FunctionHandle(function)
        executable, _ = handle.executable()
        executable(None, 0, 5)
        baseline = list(out)

        handle.compile(ExecutionMode.UNOPTIMIZED)
        executable, mode = handle.executable()
        assert mode is ExecutionMode.UNOPTIMIZED
        out.clear()
        executable(None, 0, 5)
        assert out == baseline

        handle.compile(ExecutionMode.OPTIMIZED)
        executable, mode = handle.executable()
        assert mode is ExecutionMode.OPTIMIZED
        out.clear()
        executable(None, 0, 5)
        assert out == baseline

    def test_compile_is_idempotent(self):
        function, _ = self._worker()
        handle = FunctionHandle(function)
        first = handle.compile(ExecutionMode.UNOPTIMIZED)
        second = handle.compile(ExecutionMode.UNOPTIMIZED)
        assert second == first  # cached, not recompiled

    def test_mode_switch_mid_pipeline_loses_no_work(self):
        function, out = self._worker()
        handle = FunctionHandle(function)
        executable, _ = handle.executable()
        executable(None, 0, 10)
        handle.compile(ExecutionMode.OPTIMIZED)
        executable, _ = handle.executable()
        executable(None, 10, 20)
        assert out == [i * i for i in range(20)]


class TestTrace:
    def test_mode_switches_and_render(self):
        trace = ExecutionTrace(label="demo")
        trace.add(TraceEvent(0, 0.0, 0.5, "morsel", "scan t", "bytecode", 10))
        trace.add(TraceEvent(1, 0.1, 0.4, "compile", "scan t", "unoptimized"))
        trace.add(TraceEvent(0, 0.5, 0.8, "morsel", "scan t", "unoptimized", 10))
        assert trace.duration == pytest.approx(0.8)
        assert trace.mode_switches() == [("scan t", "bytecode->unoptimized")]
        rendered = render_trace(trace, width=40)
        assert "thread 0" in rendered and "C" in rendered


class TestSimulation:
    def _profile(self):
        pipeline = PipelineProfile(
            name="scan big", rows=1_000_000, ir_instructions=500,
            rates={"bytecode": 200_000.0, "unoptimized": 700_000.0,
                   "optimized": 1_200_000.0},
            compile_seconds={"bytecode": 0.001, "unoptimized": 0.02,
                             "optimized": 0.12})
        small = PipelineProfile(
            name="scan small", rows=2_000, ir_instructions=120,
            rates={"bytecode": 200_000.0, "unoptimized": 700_000.0,
                   "optimized": 1_200_000.0},
            compile_seconds={"bytecode": 0.0005, "unoptimized": 0.01,
                             "optimized": 0.05})
        return QueryProfile(label="synthetic", planning_seconds=0.001,
                            codegen_seconds=0.001,
                            pipelines=[small, pipeline])

    def test_static_bytecode_has_no_compile_cost(self):
        result = simulate_static(self._profile(), "bytecode", threads=4)
        assert result.compile_seconds < 0.01

    def test_static_optimized_pays_compilation_up_front(self):
        result = simulate_static(self._profile(), "optimized", threads=4)
        assert result.compile_seconds == pytest.approx(0.17)

    def test_adaptive_beats_worst_static_choice(self):
        profile = self._profile()
        adaptive = simulate_adaptive(profile, threads=4)
        bytecode = simulate_static(profile, "bytecode", threads=4)
        optimized = simulate_static(profile, "optimized", threads=4)
        assert adaptive.total_seconds <= max(bytecode.total_seconds,
                                             optimized.total_seconds)

    def test_adaptive_compiles_only_the_large_pipeline(self):
        result = simulate_adaptive(self._profile(), threads=4)
        assert result.pipeline_modes["scan small"] == ["bytecode"]
        assert len(result.pipeline_modes["scan big"]) >= 2

    def test_more_threads_do_not_slow_down(self):
        profile = self._profile()
        few = simulate_adaptive(profile, threads=2)
        many = simulate_adaptive(profile, threads=8)
        assert many.total_seconds <= few.total_seconds * 1.05

    def test_cost_model_from_profiles(self):
        model = cost_model_from_profiles([self._profile()])
        assert model.speedup("optimized") > model.speedup("unoptimized") > 1.0


class _AlwaysOptimize:
    """A policy stub that requests the optimized tier on every evaluation."""

    def evaluate(self, progress, current, instruction_count, active_workers,
                 elapsed_seconds):
        from repro.adaptive.policy import PolicyEvaluation

        return PolicyEvaluation(Decision.OPTIMIZED, 1.0, None, 0.0, 1.0)


def _sum_query_db(rows=20_000, morsel_size=64):
    db = Database(morsel_size=morsel_size)
    db.create_table("t", [("a", SQLType.INT64)])
    db.insert("t", [(i,) for i in range(rows)])
    return db


class TestAdaptiveCompileAccounting:
    """Regression tests for the background-compile timing/race fixes."""

    def _run(self, monkeypatch, num_threads, sleep_seconds=0.03):
        from repro.adaptive import modes as modes_module
        from repro.adaptive.executor import AdaptiveExecutor

        real_compile = modes_module.compile_function
        calls = []

        def slow_compile(function, tier, **kwargs):
            calls.append((function.name, tier))
            time.sleep(sleep_seconds)
            return real_compile(function, tier, **kwargs)

        monkeypatch.setattr(modes_module, "compile_function", slow_compile)

        db = _sum_query_db()
        generated, planning, timings = db.generate("select sum(a) as s from t")
        executor = AdaptiveExecutor(db, num_threads=num_threads,
                                    policy=_AlwaysOptimize())
        result = executor.execute(generated, planning, timings)
        return result, calls

    def test_multithreaded_compile_time_is_accounted(self, monkeypatch):
        # The background compile thread's time must show up in the phase
        # breakdown exactly like the synchronous w=1 path's does.
        result, calls = self._run(monkeypatch, num_threads=3)
        assert calls, "policy stub should have triggered a compilation"
        assert result.timings.compile >= 0.03

    def test_single_threaded_compile_time_is_accounted(self, monkeypatch):
        result, calls = self._run(monkeypatch, num_threads=1)
        assert calls
        assert result.timings.compile >= 0.03

    def test_exactly_one_compile_per_pipeline_and_tier(self, monkeypatch):
        # Many workers all asking for the same switch must not spawn
        # duplicate compile threads for one (pipeline, tier) target.
        result, calls = self._run(monkeypatch, num_threads=8,
                                  sleep_seconds=0.02)
        counts = Counter(calls)
        assert counts, "expected at least one compilation"
        duplicates = {key: n for key, n in counts.items() if n > 1}
        assert not duplicates, f"duplicate compilations: {duplicates}"

    def test_results_correct_while_switching(self, monkeypatch):
        result, _ = self._run(monkeypatch, num_threads=4)
        assert result.rows == [(sum(range(20_000)),)]


class TestExecutors:
    def test_adaptive_mode_equals_static_results(self):
        db = Database(morsel_size=256)
        db.create_table("t", [("a", SQLType.INT64), ("b", SQLType.FLOAT64)])
        db.insert("t", [(i % 13, float(i)) for i in range(5000)])
        sql = "select a, sum(b) as s, count(*) as c from t group by a order by a"
        static = db.execute(sql, mode="optimized")
        adaptive = db.execute(sql, mode="adaptive", collect_trace=True)
        assert adaptive.rows == static.rows
        assert adaptive.mode == "adaptive"
        assert adaptive.trace is not None
        assert adaptive.trace.events

    def test_adaptive_multithreaded(self):
        db = Database(morsel_size=128)
        db.create_table("t", [("a", SQLType.INT64)])
        db.insert("t", [(i,) for i in range(3000)])
        sql = "select sum(a) as s from t"
        result = db.execute(sql, mode="adaptive", threads=3)
        assert result.rows == [(sum(range(3000)),)]

    def test_static_parallel_executor(self):
        db = Database(morsel_size=128)
        db.create_table("t", [("a", SQLType.INT64)])
        db.insert("t", [(i,) for i in range(2000)])
        result = db.execute("select count(*) as c from t", mode="bytecode",
                            threads=4)
        assert result.rows == [(2000,)]
