"""Unit tests for the IR optimization passes and the compiled backends."""

import pytest

from repro.backend import compile_optimized, compile_unoptimized
from repro.backend.cost_model import CostModel, default_cost_model
from repro.ir import Constant, ExternFunction, Function, IRBuilder, verify_function
from repro.ir.types import i1, i64, ptr, void
from repro.passes import (
    CommonSubexpressionEliminationPass,
    ConstantFoldingPass,
    DeadCodeEliminationPass,
    PeepholePass,
    SimplifyCFGPass,
    default_pipeline,
)
from repro.vm import VirtualMachine, translate_function


def make_redundant_function():
    """Function full of foldable / duplicated / dead instructions."""
    values = []
    sink = ExternFunction("sink", [i64], void, values.append)
    function = Function("messy", [i64], ["x"], i64)
    builder = IRBuilder(function)
    x = function.args[0]
    # constant-foldable
    folded = builder.mul(builder.const_i64(6), builder.const_i64(7))
    # peephole-foldable
    plus_zero = builder.add(x, builder.const_i64(0))
    times_one = builder.mul(plus_zero, builder.const_i64(1))
    # duplicated expression (CSE)
    first = builder.add(times_one, folded)
    second = builder.add(times_one, folded)
    # dead value
    builder.sub(x, builder.const_i64(3))
    builder.call(sink, [first])
    builder.call(sink, [second])
    builder.ret(first)
    return function, values, sink


class TestPasses:
    def test_constant_folding(self):
        function, _, _ = make_redundant_function()
        before = function.instruction_count()
        assert ConstantFoldingPass().run(function)
        assert function.instruction_count() < before
        verify_function(function)

    def test_peephole_removes_identities(self):
        function, _, _ = make_redundant_function()
        ConstantFoldingPass().run(function)
        assert PeepholePass().run(function)
        opcodes = [inst.opcode for inst in function.instructions()]
        # x + 0 and x * 1 should both be gone.
        assert opcodes.count("add") <= 2
        verify_function(function)

    def test_cse_deduplicates(self):
        function, _, _ = make_redundant_function()
        ConstantFoldingPass().run(function)
        PeepholePass().run(function)
        assert CommonSubexpressionEliminationPass().run(function)
        verify_function(function)

    def test_dce_removes_unused(self):
        function, _, _ = make_redundant_function()
        before = function.instruction_count()
        assert DeadCodeEliminationPass().run(function)
        assert function.instruction_count() < before
        verify_function(function)

    def test_dce_keeps_side_effects(self):
        function, _, sink = make_redundant_function()
        DeadCodeEliminationPass().run(function)
        calls = [inst for inst in function.instructions()
                 if inst.opcode == "call"]
        assert len(calls) == 2

    def test_simplify_cfg_folds_constant_branch(self):
        function = Function("branchy", [i64], ["x"], i64)
        builder = IRBuilder(function)
        then_block = builder.new_block("then")
        else_block = builder.new_block("else")
        builder.condbr(Constant(i1, 1), then_block, else_block)
        IRBuilder(function, then_block).ret(builder.const_i64(1))
        IRBuilder(function, else_block).ret(builder.const_i64(2))
        assert SimplifyCFGPass().run(function)
        verify_function(function)
        assert len(function.blocks) <= 2

    def test_pipeline_preserves_semantics(self):
        function, values, _ = make_redundant_function()
        bytecode, _ = translate_function(function)
        values.clear()
        original = VirtualMachine().execute(bytecode, [5])
        original_calls = list(values)

        default_pipeline().run_function(function)
        verify_function(function)
        bytecode, _ = translate_function(function)
        values.clear()
        optimized = VirtualMachine().execute(bytecode, [5])
        assert optimized == original
        assert list(values) == original_calls

    def test_pass_stats_recorded(self):
        function, _, _ = make_redundant_function()
        stats = default_pipeline().run_function(function)
        assert stats.instructions_before >= stats.instructions_after
        assert stats.total_seconds >= 0
        assert stats.per_pass_seconds


class TestBackends:
    def _accumulating_function(self):
        out = []
        sink = ExternFunction("collect", [i64], void, out.append)
        function = Function("worker", [ptr, i64, i64],
                            ["state", "begin", "end"])
        builder = IRBuilder(function)
        data = list(range(200))
        column = builder.const_ptr((data, 0))
        index, _, _, close = builder.count_loop(function.args[1],
                                                function.args[2])
        error = None
        value = builder.load(i64, builder.gep(column, index))
        squared = builder.mul(value, value)
        shifted = builder.add(squared, builder.const_i64(3))
        builder.call(sink, [shifted])
        close()
        builder.ret()
        return function, out

    def test_unoptimized_matches_bytecode(self):
        function, out = self._accumulating_function()
        bytecode, _ = translate_function(function)
        out.clear()
        VirtualMachine().execute(bytecode, [None, 5, 25])
        expected = list(out)
        compiled = compile_unoptimized(function)
        out.clear()
        compiled(None, 5, 25)
        assert out == expected

    def test_optimized_matches_bytecode(self):
        function, out = self._accumulating_function()
        bytecode, _ = translate_function(function)
        out.clear()
        VirtualMachine().execute(bytecode, [None, 5, 25])
        expected = list(out)
        compiled = compile_optimized(function)
        out.clear()
        compiled(None, 5, 25)
        assert out == expected

    def test_optimized_does_not_mutate_original(self):
        function, _ = self._accumulating_function()
        before = function.instruction_count()
        compile_optimized(function)
        assert function.instruction_count() == before

    def test_compile_seconds_recorded(self):
        function, _ = self._accumulating_function()
        unopt = compile_unoptimized(function)
        opt = compile_optimized(function)
        assert unopt.compile_seconds > 0
        assert opt.compile_seconds > 0
        assert opt.pass_seconds >= 0

    def test_tier_names(self):
        function, _ = self._accumulating_function()
        assert compile_unoptimized(function).tier == "unoptimized"
        assert compile_optimized(function).tier == "optimized"


class TestCostModel:
    def test_compile_time_grows_with_size(self):
        model = default_cost_model()
        small = model.compile_seconds("optimized", 100)
        large = model.compile_seconds("optimized", 10_000)
        assert large > small

    def test_optimized_costs_more_than_unoptimized(self):
        model = default_cost_model()
        assert model.compile_seconds("optimized", 1000) > \
            model.compile_seconds("unoptimized", 1000)
        assert model.compile_seconds("unoptimized", 1000) > \
            model.compile_seconds("bytecode", 1000)

    def test_speedups_ordered(self):
        model = default_cost_model()
        assert model.speedup("optimized") >= model.speedup("unoptimized") \
            >= model.speedup("bytecode") == 1.0

    def test_fit_updates_estimate(self):
        model = CostModel()
        samples = [(100, 0.001), (1000, 0.01), (10_000, 0.1)]
        estimate = model.fit("unoptimized", samples, speedup=2.5)
        assert estimate.per_instruction_seconds == pytest.approx(1e-5, rel=0.2)
        assert model.speedup("unoptimized") == 2.5

    def test_fit_with_single_sample_keeps_previous(self):
        model = CostModel()
        before = model.compile_seconds("optimized", 500)
        model.fit("optimized", [(100, 0.5)])
        assert model.compile_seconds("optimized", 500) == before
