"""Unit tests for the telemetry subsystem.

Covers the sharded instruments (exactness under concurrency -- the
registry's whole design premise), the registry snapshot/export surfaces,
the unified trace model, EXPLAIN statement recognition, and the
end-to-end concurrency-correctness property: after N concurrent
submissions with interleaved cache invalidations, the registry snapshot
agrees with independently maintained ground truth.
"""

from __future__ import annotations

import json
import threading

import pytest

from repro import Database, ExecOptions, MetricsRegistry, SQLType
from repro.errors import ExecutionError
from repro.telemetry import (
    Counter,
    Gauge,
    Histogram,
    QueryTrace,
    bucket_index,
    bucket_upper_bound,
    split_explain,
)
from repro.telemetry.export import prometheus_name


# --------------------------------------------------------------------------- #
# sharded instruments
# --------------------------------------------------------------------------- #
class TestInstruments:
    def test_counter_single_thread(self):
        counter = Counter("c")
        for _ in range(100):
            counter.inc()
        counter.inc(5)
        assert counter.value == 105

    def test_counter_exact_under_threads(self):
        counter = Counter("c")
        threads = 8
        increments = 5_000

        def worker():
            for _ in range(increments):
                counter.inc()

        pool = [threading.Thread(target=worker) for _ in range(threads)]
        for thread in pool:
            thread.start()
        for thread in pool:
            thread.join()
        # Sharded cells make this exact, not approximate: every thread has
        # its own cell, merged on read.
        assert counter.value == threads * increments

    def test_gauge_inc_dec(self):
        gauge = Gauge("g")
        gauge.inc(3)
        gauge.dec()
        assert gauge.value == 2

    def test_histogram_buckets(self):
        assert bucket_index(0.0) == 0
        # Bucket upper bounds are powers of two over the 1 us base.
        for index in range(1, 10):
            upper = bucket_upper_bound(index)
            assert bucket_index(upper * 0.99) == index
            assert bucket_index(upper * 1.01) == index + 1

    def test_histogram_observe_and_quantiles(self):
        histogram = Histogram("h")
        for value in (0.001, 0.001, 0.001, 0.1):
            histogram.observe(value)
        snapshot = histogram.snapshot()
        assert snapshot["count"] == 4
        assert snapshot["sum"] == pytest.approx(0.103)
        # p50 lands in the bucket covering 1 ms; the quantile reports the
        # covering bucket's upper bound (a guaranteed overestimate).
        assert 0.001 <= snapshot["p50"] <= 0.002
        assert snapshot["p99"] >= 0.1 * 0.5

    def test_histogram_exact_count_under_threads(self):
        histogram = Histogram("h")
        threads = 6
        observations = 2_000

        def worker(seed):
            for i in range(observations):
                histogram.observe((seed + i) * 1e-6)

        pool = [threading.Thread(target=worker, args=(t,))
                for t in range(threads)]
        for thread in pool:
            thread.start()
        for thread in pool:
            thread.join()
        assert histogram.snapshot()["count"] == threads * observations


# --------------------------------------------------------------------------- #
# registry
# --------------------------------------------------------------------------- #
class TestRegistry:
    def test_get_or_create_and_kind_mismatch(self):
        registry = MetricsRegistry()
        counter = registry.counter("a.b")
        assert registry.counter("a.b") is counter
        with pytest.raises(TypeError):
            registry.gauge("a.b")

    def test_nested_snapshot(self):
        registry = MetricsRegistry()
        registry.counter("query.count").inc(3)
        registry.gauge("pool.busy").inc()
        snapshot = registry.snapshot()
        assert snapshot["query"]["count"] == 3
        assert snapshot["pool"]["busy"] == 1

    def test_callbacks_are_snapshot_time_only(self):
        registry = MetricsRegistry()
        calls = []
        registry.register_callback("derived.value", lambda: calls.append(1) or 42)
        assert not calls
        assert registry.flat_snapshot()["derived.value"] == 42
        assert len(calls) == 1

    def test_failing_callback_reports_none(self):
        registry = MetricsRegistry()
        registry.register_callback("bad", lambda: 1 / 0)
        assert registry.flat_snapshot()["bad"] is None

    def test_json_lines_export(self):
        registry = MetricsRegistry()
        registry.counter("q.count").inc(2)
        registry.histogram("q.seconds").observe(0.5)
        lines = registry.to_json_lines().strip().splitlines()
        parsed = [json.loads(line) for line in lines]
        names = {entry["name"] for entry in parsed}
        assert {"q.count", "q.seconds"} <= names

    def test_prometheus_export(self):
        registry = MetricsRegistry()
        registry.counter("query.count", "Total queries").inc(7)
        registry.histogram("query.seconds").observe(0.01)
        text = registry.to_prometheus()
        assert "repro_query_count 7" in text
        assert "# TYPE repro_query_count counter" in text
        assert 'repro_query_seconds_bucket{le="+Inf"} 1' in text
        assert "repro_query_seconds_count 1" in text

    def test_prometheus_name_sanitization(self):
        assert prometheus_name("a.b-c") == "repro_a_b_c"


# --------------------------------------------------------------------------- #
# trace model + EXPLAIN lexing
# --------------------------------------------------------------------------- #
class TestTraceModel:
    def test_spans_and_switches_roundtrip(self):
        trace = QueryTrace(query_id="q1", sql="select 1", mode="adaptive")
        trace.add_span("parse", 0.0, 0.001)
        trace.record_tier_switch("P1", "bytecode", "optimized", at=0.01,
                                 synchronous=False,
                                 trigger={"decision": "optimized"})
        data = trace.to_dict()
        assert data["query_id"] == "q1"
        assert data["spans"][0]["name"] == "parse"
        assert data["tier_switches"][0]["trigger"]["decision"] == "optimized"
        json.loads(trace.to_json())

    def test_split_explain(self):
        assert split_explain("select 1") == (None, "select 1")
        kind, inner = split_explain("EXPLAIN select 1")
        assert (kind, inner) == ("plan", "select 1")
        kind, inner = split_explain("  explain  analyze\n select 1")
        assert kind == "analyze"
        assert inner.strip() == "select 1"


# --------------------------------------------------------------------------- #
# database wiring
# --------------------------------------------------------------------------- #
def _sample_db() -> Database:
    db = Database(workers=2)
    db.create_table("t", [("a", SQLType.INT64), ("b", SQLType.INT64)])
    db.insert("t", [(i, i * 2) for i in range(500)])
    return db


class TestDatabaseTelemetry:
    def test_levels_validated(self):
        db = _sample_db()
        try:
            with pytest.raises(ExecutionError):
                db.execute("select a from t", telemetry="verbose")
        finally:
            db.close()

    def test_off_records_nothing(self):
        db = _sample_db()
        try:
            result = db.execute("select sum(b) as s from t", telemetry="off")
            assert result.rows == [(sum(i * 2 for i in range(500)),)]
            assert db.metrics.get("query.count").value == 0
            assert result.query_trace is None
        finally:
            db.close()

    def test_basic_records_counters_and_trace(self):
        db = _sample_db()
        try:
            result = db.execute("select sum(b) as s from t")
            assert db.metrics.get("query.count").value == 1
            assert db.metrics.get("query.by_mode.adaptive").value == 1
            assert db.metrics.get("query.rows").value == 1
            trace = result.query_trace
            assert trace is not None
            assert trace.query_id
            assert trace.mode == "adaptive"
            assert any(span.kind == "pipeline" for span in trace.spans)
        finally:
            db.close()

    def test_trace_level_implies_morsel_events(self):
        db = _sample_db()
        try:
            result = db.execute("select sum(b) as s from t",
                                telemetry="trace")
            assert result.trace is not None
            assert any(event.kind == "morsel"
                       for event in result.trace.events)
            # Baselines have no morsel timeline; the level degrades without
            # erroring (explicit collect_trace still raises -- covered by
            # the prepared-cache tests).
            baseline = db.execute("select sum(b) as s from t",
                                  mode="volcano", telemetry="trace")
            assert baseline.trace is None
            assert baseline.query_trace is not None
        finally:
            db.close()

    def test_vm_instruction_accounting(self):
        db = _sample_db()
        try:
            db.execute("select sum(b) as s from t", mode="bytecode")
            assert db.vm_instructions > 0
            assert db.metrics.flat_snapshot()["vm.instructions"] == \
                db.vm_instructions
        finally:
            db.close()

    def test_query_ids_are_unique(self):
        db = _sample_db()
        try:
            ids = {db.execute("select a from t where a < 3").query_id
                   for _ in range(5)}
            assert len(ids) == 5
        finally:
            db.close()


class TestConcurrencyCorrectness:
    def test_snapshot_matches_ground_truth_under_concurrency(self):
        """N concurrent submits + interleaved invalidations: exact counters.

        Ground truth is maintained independently (count of successful
        results per mode); the registry must agree exactly once all tickets
        resolve -- sharded cells lose nothing under thread interleaving.
        """
        db = Database(workers=4)
        db.create_table("t", [("a", SQLType.INT64), ("b", SQLType.INT64)])
        db.insert("t", [(i, i) for i in range(200)])
        try:
            modes = ["adaptive", "bytecode", "optimized", "volcano"]
            submissions = 48
            tickets = []
            for index in range(submissions):
                tickets.append(db.submit(
                    "select sum(b) as s from t where a >= 1",
                    mode=modes[index % len(modes)]))
                if index % 8 == 3:
                    # Interleaved invalidation traffic: inserts bump table
                    # versions, invalidating cached plans mid-stream.
                    db.insert("t", [(1000 + index, index)])
            results = [ticket.result(timeout=120) for ticket in tickets]

            expected_rows = sum(len(r.rows) for r in results)
            flat = db.metrics.flat_snapshot()
            assert flat["query.count"] == submissions
            assert flat["query.failed"] == 0
            assert flat["query.rows"] == expected_rows
            for mode in modes:
                expected = sum(1 for i in range(submissions)
                               if modes[i % len(modes)] == mode)
                assert flat[f"query.by_mode.{mode}"] == expected
            # Derived callbacks agree with their synchronized sources.
            stats = db.scheduler.stats
            assert flat["scheduler.submitted"] == stats.submitted
            assert flat["scheduler.completed"] == stats.completed
            assert flat["plan_cache.invalidations"] == \
                db.plan_cache.stats.invalidations
            assert flat["scheduler.queue_seconds"]["count"] == submissions
        finally:
            db.close()

    def test_options_accessor_exposes_telemetry(self):
        opts = ExecOptions(telemetry="off")
        ticket_like = type("T", (), {"options": opts})()
        from repro.options import OptionsAccessors
        assert OptionsAccessors.telemetry.fget(ticket_like) == "off"
