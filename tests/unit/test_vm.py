"""Unit tests for the bytecode VM: liveness, register allocation, translation,
interpretation and fusion."""

import pytest

from repro.errors import DivisionByZeroError, OverflowError_
from repro.ir import Constant, ExternFunction, Function, IRBuilder, verify_function
from repro.ir.types import f64, i64, ptr, void
from repro.vm import (
    IRInterpreter,
    VirtualMachine,
    allocate_registers,
    compute_live_ranges,
    disassemble,
    translate_function,
)
from repro.vm.opcodes import Opcode
from repro.vm.regalloc import RESERVED_SLOTS


def make_sum_function():
    """f(ptr buf, begin, end) -> sum of buf[i] * 2 + 1 over the range."""
    function = Function("summer", [ptr, i64, i64], ["buf", "begin", "end"], i64)
    builder = IRBuilder(function)
    index, body, exit_block, close = builder.count_loop(function.args[1],
                                                        function.args[2])
    element_ptr = builder.gep(function.args[0], index)
    element = builder.load(i64, element_ptr)
    doubled = builder.mul(element, builder.const_i64(2))
    plus_one = builder.add(doubled, builder.const_i64(1))
    builder.call(_SINK, [plus_one])
    close()
    builder.ret(builder.const_i64(0))
    return function


_SINK_VALUES = []
_SINK = ExternFunction("sink", [i64], void, _SINK_VALUES.append)


class TestLiveness:
    def test_every_value_gets_a_range(self):
        function = make_sum_function()
        verify_function(function)
        ranges, _ = compute_live_ranges(function)
        produced = [inst for inst in function.instructions()
                    if inst.has_result]
        for inst in produced:
            assert inst.uid in ranges

    def test_range_covers_definition_and_uses(self):
        from repro.ir.instructions import PhiInst

        function = make_sum_function()
        ranges, info = compute_live_ranges(function)
        rpo = info.rpo_index
        for block in function.blocks:
            for position, inst in enumerate(block.instructions):
                if isinstance(inst, PhiInst):
                    # Phi operands are read at the end of the incoming block
                    # (paper Section IV-D), not in the phi's own block.
                    for value, pred in inst.incoming:
                        if value.uid in ranges:
                            live = ranges[value.uid]
                            assert live.start_block <= rpo[id(pred)] \
                                <= live.end_block
                    continue
                for operand in inst.value_operands():
                    if operand.uid not in ranges:
                        continue
                    live = ranges[operand.uid]
                    assert live.start_block <= rpo[id(block)] <= live.end_block

    def test_loop_value_extended_to_loop_end(self):
        # A value defined before a loop and used inside it must stay live for
        # the whole loop (paper Fig. 10).
        function = Function("f", [i64], ["n"], i64)
        builder = IRBuilder(function)
        before = builder.add(function.args[0], builder.const_i64(5))
        index, _, _, close = builder.count_loop(builder.const_i64(0),
                                                function.args[0])
        builder.call(_SINK, [before])
        close()
        builder.ret(before)
        verify_function(function)
        ranges, info = compute_live_ranges(function)
        live = ranges[before.uid]
        loop = [l for l in info.loops if l.depth == 1][0]
        assert live.end_block >= loop.last_index


class TestRegisterAllocation:
    def test_no_overlapping_ranges_share_a_slot(self):
        function = make_sum_function()
        ranges, _ = compute_live_ranges(function)
        allocation = allocate_registers(function)
        values = list(ranges.values())
        for i, a in enumerate(values):
            for b in values[i + 1:]:
                if allocation.slot_of.get(a.value.uid) is None:
                    continue
                if allocation.slot_of.get(b.value.uid) is None:
                    continue
                if allocation.slot_of[a.value.uid] != \
                        allocation.slot_of[b.value.uid]:
                    continue
                # Same slot: the block-level ranges must not overlap, unless
                # both are single-block locals within the same block (those
                # are proven disjoint at instruction level by construction).
                if a.single_block and b.single_block \
                        and a.start_block == b.start_block:
                    assert (a.last_use_position < b.def_position
                            or b.last_use_position < a.def_position)
                else:
                    assert not a.overlaps(b)

    def test_reserved_slots(self):
        function = make_sum_function()
        allocation = allocate_registers(function)
        assert allocation.num_registers >= RESERVED_SLOTS

    def test_loop_aware_not_larger_than_no_reuse(self):
        function = make_sum_function()
        loop_aware = allocate_registers(function, strategy="loop_aware")
        no_reuse = allocate_registers(function, strategy="no_reuse")
        greedy = allocate_registers(function, strategy="greedy_window")
        assert loop_aware.num_registers <= greedy.num_registers
        assert greedy.num_registers <= no_reuse.num_registers

    def test_unknown_strategy_rejected(self):
        function = make_sum_function()
        with pytest.raises(Exception):
            allocate_registers(function, strategy="nonsense")


class TestTranslation:
    def test_gep_load_fusion(self):
        function = make_sum_function()
        bytecode, stats = translate_function(function)
        assert stats.fused_memory_ops >= 1
        opcodes = {inst.op for inst in bytecode.code}
        assert Opcode.LOAD_IDX in opcodes
        assert Opcode.GEP not in opcodes

    def test_fusion_can_be_disabled(self):
        function = make_sum_function()
        bytecode, stats = translate_function(function, enable_fusion=False)
        assert stats.fused_memory_ops == 0
        opcodes = {inst.op for inst in bytecode.code}
        assert Opcode.GEP in opcodes

    def test_overflow_fusion(self):
        function = Function("chk", [i64, i64], ["a", "b"], i64)
        builder = IRBuilder(function)
        error = builder.new_block("error")
        result = builder.checked_add(function.args[0], function.args[1], error)
        builder.ret(result)
        IRBuilder(function, error).unreachable()
        bytecode, stats = translate_function(function)
        assert stats.fused_overflow_checks == 1
        assert Opcode.ADD_CHK_I64 in {inst.op for inst in bytecode.code}

    def test_disassembly_mentions_registers(self):
        function = make_sum_function()
        bytecode, _ = translate_function(function)
        text = disassemble(bytecode)
        assert "registers" in text and "load_idx" in text

    def test_translation_stats_counts(self):
        function = make_sum_function()
        bytecode, stats = translate_function(function)
        assert stats.ir_instructions == function.instruction_count()
        assert stats.bytecode_instructions == len(bytecode.code)
        assert stats.translation_seconds >= 0


class TestInterpretation:
    def test_results_match_ir_interpreter(self):
        function = make_sum_function()
        data = list(range(50))
        bytecode, _ = translate_function(function)

        _SINK_VALUES.clear()
        VirtualMachine().execute(bytecode, [(data, 0), 10, 20])
        vm_values = list(_SINK_VALUES)

        _SINK_VALUES.clear()
        IRInterpreter().execute(function, [(data, 0), 10, 20])
        ir_values = list(_SINK_VALUES)

        assert vm_values == ir_values == [i * 2 + 1 for i in range(10, 20)]

    def test_empty_range_executes_nothing(self):
        function = make_sum_function()
        bytecode, _ = translate_function(function)
        _SINK_VALUES.clear()
        VirtualMachine().execute(bytecode, [([], 0), 0, 0])
        assert _SINK_VALUES == []

    def test_overflow_raises(self):
        function = Function("chk", [i64, i64], ["a", "b"], i64)
        builder = IRBuilder(function)
        error = builder.new_block("error")
        result = builder.checked_add(function.args[0], function.args[1], error)
        builder.ret(result)
        IRBuilder(function, error).unreachable()
        bytecode, _ = translate_function(function)
        vm = VirtualMachine()
        assert vm.execute(bytecode, [1, 2]) == 3
        with pytest.raises(OverflowError_):
            vm.execute(bytecode, [2 ** 62, 2 ** 62])

    def test_division_by_zero_raises(self):
        function = Function("div", [i64, i64], ["a", "b"], i64)
        builder = IRBuilder(function)
        builder.ret(builder.div(function.args[0], function.args[1]))
        bytecode, _ = translate_function(function)
        vm = VirtualMachine()
        assert vm.execute(bytecode, [7, 2]) == 3
        with pytest.raises(DivisionByZeroError):
            vm.execute(bytecode, [7, 0])

    def test_signed_division_truncates_toward_zero(self):
        function = Function("div", [i64, i64], ["a", "b"], i64)
        builder = IRBuilder(function)
        builder.ret(builder.div(function.args[0], function.args[1]))
        bytecode, _ = translate_function(function)
        vm = VirtualMachine()
        assert vm.execute(bytecode, [-7, 2]) == -3
        assert vm.execute(bytecode, [7, -2]) == -3

    def test_instructions_executed_counter(self):
        function = make_sum_function()
        bytecode, _ = translate_function(function)
        vm = VirtualMachine()
        vm.execute(bytecode, [(list(range(10)), 0), 0, 10])
        assert vm.instructions_executed > 10

    def test_float_arithmetic(self):
        function = Function("fmix", [f64, f64], ["a", "b"], f64)
        builder = IRBuilder(function)
        total = builder.add(function.args[0], function.args[1])
        scaled = builder.mul(total, builder.const_f64(0.5))
        builder.ret(scaled)
        bytecode, _ = translate_function(function)
        assert VirtualMachine().execute(bytecode, [3.0, 5.0]) == pytest.approx(4.0)
