"""Semantic result cache + execute_many batch bindings.

Covers the key structure (type qualification, ``LIMIT ?`` participation),
catalog-version invalidation, admission bounds, the ``use_result_cache``
escape hatch, fused batch execution with intra-batch deduplication, the
scheduler/session batch paths, and the telemetry surface.
"""

from __future__ import annotations

import pytest

from repro import Database, ResultCache, SQLType, result_cache_key
from repro.errors import ExecutionError
from repro.result_cache import CachedResult


def _db(**kwargs) -> Database:
    db = Database(**kwargs)
    db.create_table("t", [("a", SQLType.INT64), ("b", SQLType.FLOAT64)])
    db.insert("t", [(i, float(i) * 1.5) for i in range(50)])
    return db


# --------------------------------------------------------------------------- #
# the key constructor
# --------------------------------------------------------------------------- #
class TestResultCacheKey:
    def test_type_qualification_separates_equal_hashing_values(self):
        plan = "select * from t where a = ?"
        assert result_cache_key(plan, "adaptive", (2,)) \
            != result_cache_key(plan, "adaptive", (2.0,))
        assert result_cache_key(plan, "adaptive", (1,)) \
            != result_cache_key(plan, "adaptive", (True,))

    def test_mode_and_plan_key_participate(self):
        assert result_cache_key("k", "adaptive", (1,)) \
            != result_cache_key("k", "volcano", (1,))
        assert result_cache_key("k1", "adaptive", (1,)) \
            != result_cache_key("k2", "adaptive", (1,))


# --------------------------------------------------------------------------- #
# the cache data structure
# --------------------------------------------------------------------------- #
def _entry(rows, versions) -> CachedResult:
    nbytes = 56 * len(rows) + 32 * sum(len(r) for r in rows)
    return CachedResult(column_names=["x"], column_types=[SQLType.INT64],
                        rows=rows, mode="adaptive",
                        table_versions=versions, nbytes=nbytes)


class TestResultCacheStructure:
    def test_lru_eviction_at_capacity(self):
        cache = ResultCache(capacity=2)
        for i in range(3):
            key = result_cache_key("q", "adaptive", (i,))
            cache.put(key, {"t": 1}, _entry([(i,)], {"t": 1}).to_result())
        assert len(cache) == 2
        assert cache.stats.evictions == 1
        oldest = result_cache_key("q", "adaptive", (0,))
        assert cache.get(oldest, lambda name: 1) is None

    def test_row_admission_bound_rejects(self):
        cache = ResultCache(capacity=8, max_entry_rows=2)
        key = result_cache_key("q", "adaptive", ())
        big = _entry([(i,) for i in range(5)], {"t": 1}).to_result()
        assert cache.put(key, {"t": 1}, big) is False
        assert cache.stats.rejected == 1
        assert len(cache) == 0

    def test_version_mismatch_invalidates(self):
        cache = ResultCache(capacity=8)
        key = result_cache_key("q", "adaptive", ())
        cache.put(key, {"t": 3}, _entry([(1,)], {"t": 3}).to_result())
        assert cache.get(key, lambda name: 3) is not None
        assert cache.get(key, lambda name: 4) is None
        assert cache.stats.invalidations == 1
        assert len(cache) == 0

    def test_capacity_zero_disables(self):
        cache = ResultCache(capacity=0)
        assert not cache.enabled
        key = result_cache_key("q", "adaptive", ())
        assert cache.put(key, {}, _entry([(1,)], {}).to_result()) is False


# --------------------------------------------------------------------------- #
# engine integration
# --------------------------------------------------------------------------- #
class TestResultReuse:
    def test_repeat_read_served_from_result_cache(self):
        db = _db()
        sql = "select sum(b) as s from t where a >= ?"
        first = db.execute(sql, params=(10,))
        second = db.execute(sql, params=(10,))
        assert second.rows == first.rows
        assert second.cache_source == "result"
        assert second.timings.execution == 0.0
        assert db.result_cache.stats.hits == 1

    def test_keys_are_built_on_encoded_bindings(self):
        db = _db()
        sql = "select count(*) as n from t where a = ?"
        as_int = db.execute(sql, params=(2,))
        as_float = db.execute(sql, params=(2.0,))
        # Binding 2.0 to an INT64 slot encodes losslessly to 2, so the two
        # calls are the *same* execution and sharing the result is sound.
        # (The unsound collision -- literal 2 vs 2.0, where the plans
        # really differ -- is covered by the test below.)
        assert as_float.cache_source == "result"
        assert as_int.rows == as_float.rows == [(1,)]

    def test_literal_int_and_float_do_not_collide(self):
        db = _db()
        with_int = db.execute("select count(*) as n from t where a >= 2")
        with_float = db.execute("select count(*) as n from t where a >= 2.0")
        assert with_float.cache_source != "result"
        assert with_int.rows == with_float.rows

    def test_limit_parameter_participates_in_key(self):
        db = _db()
        sql = "select a from t order by a limit ?"
        five = db.execute(sql, params=(5,))
        seven = db.execute(sql, params=(7,))
        assert len(five.rows) == 5
        assert len(seven.rows) == 7
        assert seven.cache_source != "result"
        again = db.execute(sql, params=(5,))
        assert again.cache_source == "result"
        assert again.rows == five.rows

    def test_insert_invalidates(self):
        db = _db()
        sql = "select count(*) as n from t"
        assert db.execute(sql).rows == [(50,)]
        db.insert("t", [(100, 1.0)])
        fresh = db.execute(sql)
        assert fresh.rows == [(51,)]
        assert fresh.cache_source != "result"
        assert db.result_cache.stats.invalidations == 1

    def test_drop_and_recreate_does_not_serve_stale(self):
        db = _db()
        sql = "select count(*) as n from t where a >= ?"
        assert db.execute(sql, params=(0,)).rows == [(50,)]
        db.drop_table("t")
        db.create_table("t", [("a", SQLType.INT64), ("b", SQLType.FLOAT64)])
        db.insert("t", [(1, 1.0)])
        assert db.execute(sql, params=(0,)).rows == [(1,)]

    def test_use_result_cache_false_escape_hatch(self):
        db = _db()
        sql = "select sum(b) as s from t"
        db.execute(sql)
        repeat = db.execute(sql, use_result_cache=False)
        assert repeat.cache_source != "result"
        assert db.result_cache.stats.hits == 0

    def test_result_cache_size_zero_disables(self):
        db = _db(result_cache_size=0)
        sql = "select sum(b) as s from t"
        db.execute(sql)
        assert db.execute(sql).cache_source != "result"

    def test_cached_rows_are_isolated_copies(self):
        db = _db()
        sql = "select a from t where a < ?"
        first = db.execute(sql, params=(3,))
        first.rows.append(("corrupted",))
        second = db.execute(sql, params=(3,))
        assert second.cache_source == "result"
        assert second.rows == [(0,), (1,), (2,)]

    def test_baseline_modes_also_reuse(self):
        for mode in ("volcano", "vectorized"):
            db = _db()
            sql = "select count(*) as n from t where a < 10"
            db.execute(sql, mode=mode)
            repeat = db.execute(sql, mode=mode)
            assert repeat.cache_source == "result", mode
            assert repeat.rows == [(10,)]

    def test_explain_analyze_always_executes(self):
        db = _db()
        sql = "select sum(b) as s from t where a >= 5"
        db.execute(sql)
        analyzed = db.execute(f"explain analyze {sql}")
        inner = analyzed.explain.result
        assert inner.cache_source != "result"
        assert any(p.rows_in is not None for p in analyzed.explain.pipelines)

    def test_cached_result_probe(self):
        db = _db()
        sql = "select sum(b) as s from t where a >= ?"
        assert db.cached_result(sql, params=(10,)) is None
        executed = db.execute(sql, params=(10,))
        probed = db.cached_result(sql, params=(10,))
        assert probed is not None
        assert probed.rows == executed.rows
        assert probed.cache_source == "result"
        assert db.cached_result(sql, params=(11,)) is None


# --------------------------------------------------------------------------- #
# execute_many
# --------------------------------------------------------------------------- #
class TestExecuteMany:
    BINDINGS = [(1,), (2,), (1,), (3,), (2,)]

    def test_matches_per_binding_execute(self, simple_db):
        sql = "select sum(price) as s from items where category = ?"
        expected = [simple_db.execute(sql, params=b,
                                      use_result_cache=False).rows
                    for b in self.BINDINGS]
        simple_db.result_cache.clear()
        results = simple_db.execute_many(sql, self.BINDINGS)
        assert [r.rows for r in results] == expected

    def test_duplicate_bindings_fuse_within_batch(self):
        db = _db()
        sql = "select b from t where a = ?"
        results = db.execute_many(sql, self.BINDINGS)
        sources = [r.cache_source for r in results]
        # (1,) and (2,) execute once each; their repeats share the result.
        assert sources[2] == "result"
        assert sources[4] == "result"
        assert sources[0] is None

    def test_second_batch_is_fully_cached(self):
        db = _db()
        sql = "select b from t where a = ?"
        db.execute_many(sql, self.BINDINGS)
        repeat = db.execute_many(sql, self.BINDINGS)
        assert all(r.cache_source == "result" for r in repeat)

    def test_escape_hatch_disables_batch_dedup(self):
        db = _db()
        sql = "select b from t where a = ?"
        from repro.options import ExecOptions
        results = db.execute_many(sql, self.BINDINGS,
                                  options=ExecOptions(
                                      use_result_cache=False))
        assert all(r.cache_source != "result" for r in results)

    def test_all_modes_agree(self, simple_db):
        from repro.engine import BASELINE_MODES, ENGINE_MODES
        sql = "select count(*) as n from items where category = ?"
        bindings = [(0,), (1,), (0,)]
        reference = None
        for mode in ENGINE_MODES + BASELINE_MODES:
            simple_db.result_cache.clear()
            rows = [r.rows for r in simple_db.execute_many(sql, bindings,
                                                           mode=mode)]
            if reference is None:
                reference = rows
            assert rows == reference, mode

    def test_empty_bindings(self):
        db = _db()
        assert db.execute_many("select a from t", []) == []

    def test_explain_is_rejected(self):
        db = _db()
        with pytest.raises(ExecutionError):
            db.execute_many("explain select a from t", [()])

    def test_bad_binding_fails_before_any_execution(self):
        db = _db()
        sql = "select b from t where a = ?"
        with pytest.raises(Exception):
            db.execute_many(sql, [(1,), ("not", "arity")])
        # Nothing from the failed batch may have been admitted.
        assert db.cached_result(sql, params=(1,)) is None

    def test_prepared_query_execute_many(self):
        db = _db()
        prepared = db.prepare_query("select b from t where a = ?")
        results = prepared.execute_many([(4,), (5,), (4,)])
        assert [r.rows for r in results] == [[(6.0,)], [(7.5,)], [(6.0,)]]
        assert results[2].cache_source == "result"


# --------------------------------------------------------------------------- #
# scheduler / session batch paths
# --------------------------------------------------------------------------- #
class TestScheduledBatches:
    def test_submit_many_resolves_to_ordered_list(self):
        db = _db()
        ticket = db.submit_many("select b from t where a = ?",
                                [(1,), (2,), (1,)])
        results = ticket.result(timeout=30)
        assert [r.rows for r in results] == [[(1.5,)], [(3.0,)], [(1.5,)]]
        db.close()

    def test_session_execute_many_counts_per_binding(self):
        db = _db()
        with db.session(name="batcher") as session:
            results = session.execute_many("select b from t where a = ?",
                                           [(1,), (2,), (3,)])
            assert len(results) == 3
            stats = session.stats
            assert stats.submitted == 3
            assert stats.completed == 3
        db.close()

    def test_session_submit_many(self):
        db = _db()
        with db.session(name="batcher") as session:
            ticket = session.submit_many("select b from t where a = ?",
                                         [(1,), (2,)])
            results = ticket.result(timeout=30)
            assert len(results) == 2
            assert session.stats.submitted == 2
        db.close()


# --------------------------------------------------------------------------- #
# telemetry surface
# --------------------------------------------------------------------------- #
class TestResultCacheTelemetry:
    def test_metrics_registry_exports_result_cache(self):
        db = _db()
        sql = "select sum(b) as s from t"
        db.execute(sql)
        db.execute(sql)
        text = db.metrics.to_prometheus()
        assert "result_cache" in text
        flat = db.metrics.flat_snapshot()
        assert flat["result_cache.hits"] == 1
        assert flat["result_cache.misses"] == 1
        assert flat["result_cache.entries"] == 1
        assert flat["result_cache.bytes"] > 0
        assert flat["result_cache.hit_rate"] == 0.5

    def test_fused_bindings_histogram(self):
        db = _db()
        db.execute_many("select b from t where a = ?", [(1,), (2,), (3,)])
        histogram = db.metrics.get("execute_many.fused_bindings")
        assert histogram is not None
        assert histogram.count == 1
        assert histogram.sum == 3

    def test_query_result_cached_counter(self):
        db = _db()
        sql = "select sum(b) as s from t"
        db.execute(sql)
        db.execute(sql)
        counter = db.metrics.get("query.result_cached")
        assert counter is not None and counter.value == 1

    def test_explain_analyze_header_distinguishes_caches(self):
        db = _db()
        sql = "select sum(b) as s from t where a >= 5"
        db.execute(sql)
        analyzed = db.execute(f"explain analyze {sql}")
        header = analyzed.explain.render().splitlines()[0]
        # EXPLAIN ANALYZE re-executes (never served from the result cache),
        # but the reused plan must be visible in the header.
        assert "cached=plan-cache" in header
