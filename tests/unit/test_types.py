"""Unit tests for repro.types."""

import datetime as dt

import pytest

from repro.errors import CatalogError
from repro.types import (
    DECIMAL_SCALE,
    SQLType,
    common_numeric_type,
    date_to_days,
    days_to_date,
    decimal_to_scaled,
    decode_internal_value,
    encode_python_value,
    scaled_to_decimal,
)


class TestSQLType:
    def test_numeric_classification(self):
        assert SQLType.INT64.is_numeric
        assert SQLType.FLOAT64.is_numeric
        assert SQLType.DECIMAL.is_numeric
        assert not SQLType.STRING.is_numeric
        assert not SQLType.DATE.is_numeric

    def test_integer_backed(self):
        assert SQLType.INT64.is_integer_backed
        assert SQLType.DATE.is_integer_backed
        assert not SQLType.FLOAT64.is_integer_backed

    @pytest.mark.parametrize("left,right,expected", [
        (SQLType.INT64, SQLType.INT64, SQLType.INT64),
        (SQLType.INT64, SQLType.FLOAT64, SQLType.FLOAT64),
        (SQLType.DECIMAL, SQLType.INT64, SQLType.DECIMAL),
        (SQLType.FLOAT64, SQLType.DECIMAL, SQLType.FLOAT64),
    ])
    def test_common_numeric_type(self, left, right, expected):
        assert common_numeric_type(left, right) is expected

    def test_common_numeric_type_rejects_strings(self):
        with pytest.raises(CatalogError):
            common_numeric_type(SQLType.STRING, SQLType.INT64)


class TestDates:
    def test_roundtrip(self):
        date = dt.date(1995, 3, 15)
        assert days_to_date(date_to_days(date)) == date

    def test_epoch(self):
        assert date_to_days(dt.date(1970, 1, 1)) == 0

    def test_from_string(self):
        assert date_to_days("1970-01-02") == 1

    def test_ordering_preserved(self):
        assert date_to_days("1995-01-01") < date_to_days("1996-01-01")


class TestDecimals:
    def test_roundtrip(self):
        assert scaled_to_decimal(decimal_to_scaled(12.34)) == pytest.approx(12.34)

    def test_scale(self):
        assert decimal_to_scaled(1.0) == DECIMAL_SCALE

    def test_rounding(self):
        assert decimal_to_scaled(0.005) in (0, 1)  # banker's rounding allowed


class TestEncoding:
    def test_encode_int(self):
        assert encode_python_value(7, SQLType.INT64) == 7

    def test_encode_date(self):
        assert encode_python_value("1970-01-03", SQLType.DATE) == 2
        assert encode_python_value(dt.date(1970, 1, 3), SQLType.DATE) == 2

    def test_encode_decimal(self):
        assert encode_python_value(1.5, SQLType.DECIMAL) == 150

    def test_encode_bool(self):
        assert encode_python_value(True, SQLType.BOOL) == 1
        assert encode_python_value(False, SQLType.BOOL) == 0

    def test_encode_null_rejected(self):
        with pytest.raises(CatalogError):
            encode_python_value(None, SQLType.INT64)

    def test_decode_date(self):
        assert decode_internal_value(2, SQLType.DATE) == dt.date(1970, 1, 3)

    def test_decode_decimal(self):
        assert decode_internal_value(150, SQLType.DECIMAL) == pytest.approx(1.5)

    def test_decode_bool(self):
        assert decode_internal_value(1, SQLType.BOOL) is True
