"""Unit tests for the static verification layer: the bytecode verifier, the
extern-contract checker, pass-pipeline validation and the AST linter."""

import dataclasses
from pathlib import Path

import pytest

from repro.analysis import (
    check_extern_contracts,
    find_contract,
    verify_allocation,
    verify_bytecode,
    verify_ir_enabled,
)
from repro.analysis.lint import lint_file, lint_paths
from repro.analysis.lint.rules import ALL_RULES
from repro.errors import BytecodeVerificationError, IRVerificationError
from repro.ir import Constant, ExternFunction, Function, IRBuilder, verify_function
from repro.ir.types import f64, i1, i64, ptr, void
from repro.passes import PassManager
from repro.vm import allocate_registers, translate_function
from repro.vm.opcodes import BCInstruction, Opcode

SRC_ROOT = Path(__file__).resolve().parents[2] / "src" / "repro"


# --------------------------------------------------------------------------- #
# helpers
# --------------------------------------------------------------------------- #
_SINK_VALUES = []
_SINK = ExternFunction("rt_emit_row", [ptr, i64], void,
                       lambda ctx, value: _SINK_VALUES.append(value))


def make_worker():
    """A miniature worker: loops begin..end and emits buf[i] * 2 + 1."""
    function = Function("worker0", [ptr, i64, i64],
                        ["state", "begin", "end"], void)
    builder = IRBuilder(function)
    index, _, _, close = builder.count_loop(function.args[1],
                                            function.args[2])
    doubled = builder.mul(index, builder.const_i64(2))
    plus_one = builder.add(doubled, builder.const_i64(1))
    builder.call(_SINK, [function.args[0], plus_one])
    close()
    builder.ret()
    return function


def translated(function=None):
    bytecode, _ = translate_function(function or make_worker())
    return bytecode


def with_code(bytecode, code):
    return dataclasses.replace(bytecode, code=code)


# --------------------------------------------------------------------------- #
# bytecode verifier
# --------------------------------------------------------------------------- #
class TestBytecodeVerifier:
    def test_accepts_translated_worker(self):
        verify_bytecode(translated())

    def test_rejects_empty_code(self):
        with pytest.raises(BytecodeVerificationError, match="no instructions"):
            verify_bytecode(with_code(translated(), []))

    def test_rejects_jump_out_of_range(self):
        bytecode = translated()
        code = list(bytecode.code)
        for offset, inst in enumerate(code):
            if inst.op == Opcode.BR:
                code[offset] = inst._replace(lit=len(code) + 7)
                break
        with pytest.raises(BytecodeVerificationError, match="out of range"):
            verify_bytecode(with_code(bytecode, code))

    def test_rejects_register_out_of_range(self):
        bytecode = translated()
        code = list(bytecode.code)
        for offset, inst in enumerate(code):
            if inst.op == Opcode.ADD_I64:
                code[offset] = inst._replace(a2=bytecode.num_registers + 3)
                break
        with pytest.raises(BytecodeVerificationError,
                           match="outside the register file"):
            verify_bytecode(with_code(bytecode, code))

    def test_rejects_read_of_undefined_register(self):
        bytecode = translated()
        grown = dataclasses.replace(bytecode,
                                    num_registers=bytecode.num_registers + 1)
        code = list(grown.code)
        fresh = grown.num_registers - 1  # never written by anyone
        for offset, inst in enumerate(code):
            if inst.op == Opcode.ADD_I64:
                code[offset] = inst._replace(a2=fresh)
                break
        with pytest.raises(BytecodeVerificationError,
                           match="not defined on every path"):
            verify_bytecode(with_code(grown, code))

    def test_rejects_fallthrough_off_the_end(self):
        bytecode = translated()
        code = list(bytecode.code)
        assert code[-1].op in (Opcode.RET, Opcode.RET_VAL, Opcode.TRAP,
                               Opcode.BR, Opcode.CONDBR)
        code[-1] = BCInstruction(Opcode.MOV, bytecode.num_registers - 1,
                                 0, 0, None)
        with pytest.raises(BytecodeVerificationError,
                           match="falls off the end"):
            verify_bytecode(with_code(bytecode, code))

    def test_rejects_malformed_call_descriptor(self):
        bytecode = translated()
        code = list(bytecode.code)
        for offset, inst in enumerate(code):
            if inst.op in (Opcode.CALL, Opcode.CALL_VOID):
                impl, arg_slots = inst.lit
                bad = (impl, tuple(arg_slots) + (bytecode.num_registers + 9,))
                code[offset] = inst._replace(lit=bad)
                break
        with pytest.raises(BytecodeVerificationError,
                           match="outside the register file"):
            verify_bytecode(with_code(bytecode, code))

    def test_rejects_write_to_constant_slot(self):
        bytecode = translated()
        assert bytecode.constant_slots, "worker should pool constants"
        victim = bytecode.constant_slots[0][0]
        code = list(bytecode.code)
        for offset, inst in enumerate(code):
            if inst.op == Opcode.ADD_I64:
                code[offset] = inst._replace(a1=victim)
                break
        with pytest.raises(BytecodeVerificationError,
                           match="read-only constant slot"):
            verify_bytecode(with_code(bytecode, code))

    def test_error_carries_function_offset_and_instruction(self):
        bytecode = translated()
        code = list(bytecode.code)
        code[0] = code[0]._replace(a2=bytecode.num_registers + 1)
        with pytest.raises(BytecodeVerificationError) as info:
            verify_bytecode(with_code(bytecode, code))
        error = info.value
        assert error.function_name == "worker0"
        assert error.offset == 0
        assert error.instruction is not None
        assert "worker0+0" in str(error)


class TestAllocationVerifier:
    def test_accepts_real_allocation(self):
        function = make_worker()
        verify_allocation(function, allocate_registers(function))

    def test_rejects_overlapping_ranges_in_one_slot(self):
        function = make_worker()
        allocation = allocate_registers(function)
        # Collapse every pooled value into one slot: the loop index and its
        # increment (among others) overlap, which must be rejected.
        slots = sorted(set(allocation.slot_of.values()))
        squashed = dataclasses.replace(
            allocation,
            slot_of={uid: slots[0] for uid in allocation.slot_of})
        with pytest.raises(BytecodeVerificationError, match="overlap"):
            verify_allocation(function, squashed)

    def test_rejects_slot_collision_with_constant_pool(self):
        function = make_worker()
        allocation = allocate_registers(function)
        victim = next(iter(allocation.slot_of))
        corrupt = dict(allocation.slot_of)
        corrupt[victim] = 0  # reserved slot, below the allocatable region
        with pytest.raises(BytecodeVerificationError,
                           match="outside the allocatable region"):
            verify_allocation(function,
                              dataclasses.replace(allocation,
                                                  slot_of=corrupt))


# --------------------------------------------------------------------------- #
# extern contracts
# --------------------------------------------------------------------------- #
def build_module(*functions):
    from repro.ir.function import Module
    module = Module("test")
    for function in functions:
        module.add_function(function)
    return module


def make_caller(extern, args_of):
    """A function calling ``extern`` with args chosen by ``args_of(builder,
    function)``."""
    function = Function("workerX", [ptr, i64, i64],
                        ["state", "begin", "end"], void)
    builder = IRBuilder(function)
    builder.call(extern, args_of(builder, function))
    builder.ret()
    return function


class TestExternContracts:
    def test_contract_lookup(self):
        assert find_contract("rt_build_insert_3").is_sink
        assert find_contract("rt_agg_update_12").may_lock
        assert find_contract("rt_probe_0").pure
        assert find_contract("rt_not_a_thing") is None

    def test_clean_sink_call(self):
        extern = ExternFunction("rt_emit_row", [ptr, i64], void,
                                lambda ctx, value: None)
        module = build_module(make_caller(
            extern, lambda b, f: [f.args[0], b.const_i64(1)]))
        assert check_extern_contracts(module) == []

    def test_undeclared_extern_is_flagged(self):
        extern = ExternFunction("rt_mystery_helper", [i64], i64,
                                lambda x: x, has_side_effects=False)
        module = build_module(make_caller(
            extern, lambda b, f: [b.const_i64(1)]))
        rules = {f.rule for f in check_extern_contracts(module)}
        assert "undeclared-extern" in rules

    def test_sink_without_state_arg_is_flagged(self):
        extern = ExternFunction("rt_emit_row", [ptr, i64], void,
                                lambda ctx, value: None)
        # Passes a null-ish constant instead of the threaded state argument.
        module = build_module(make_caller(
            extern,
            lambda b, f: [Constant(ptr, None), b.const_i64(1)]))
        rules = {f.rule for f in check_extern_contracts(module)}
        assert "sink-state" in rules

    def test_purity_mismatch_is_flagged(self):
        # rt_probe_* must be pure; declaring it side-effecting is a finding.
        extern = ExternFunction("rt_probe_0", [i64], ptr,
                                lambda key: None, has_side_effects=True)
        module = build_module(make_caller(
            extern, lambda b, f: [b.const_i64(1)]))
        rules = {f.rule for f in check_extern_contracts(module)}
        assert "purity" in rules

    def test_declared_arity_outside_contract_is_flagged(self):
        extern = ExternFunction("rt_match_count", [ptr, i64], i64,
                                lambda matches, extra: 0,
                                has_side_effects=False)
        module = build_module(make_caller(
            extern,
            lambda b, f: [Constant(ptr, None), b.const_i64(0)]))
        rules = {f.rule for f in check_extern_contracts(module)}
        assert "arity" in rules

    def test_impl_signature_mismatch_is_flagged(self):
        extern = ExternFunction("rt_like_0", [ptr], i1,
                                lambda: True,  # accepts 0 args, declared 1
                                has_side_effects=False)
        module = build_module(make_caller(
            extern, lambda b, f: [Constant(ptr, None)]))
        rules = {f.rule for f in check_extern_contracts(module)}
        assert "impl-signature" in rules

    def test_lock_in_hot_path_impl_is_flagged(self):
        import threading
        shared_lock = threading.Lock()

        def insert(ctx, key, payload):
            with shared_lock:
                pass

        extern = ExternFunction("rt_build_insert_0", [ptr, i64, i64], void,
                                insert)
        module = build_module(make_caller(
            extern,
            lambda b, f: [f.args[0], b.const_i64(1), b.const_i64(2)]))
        rules = {f.rule for f in check_extern_contracts(module)}
        assert "lock" in rules

    def test_real_query_modules_are_clean(self, tpch_db_tiny):
        generated, _, _ = tpch_db_tiny.generate(
            "select l_orderkey, sum(l_extendedprice) as revenue "
            "from lineitem where l_quantity < 30 "
            "group by l_orderkey order by revenue desc limit 5")
        assert check_extern_contracts(generated.module) == []


# --------------------------------------------------------------------------- #
# pass-pipeline validation + diagnostics
# --------------------------------------------------------------------------- #
class _BreakerPass:
    """A deliberately broken pass: drops the terminator of the last block."""

    name = "terminator-dropper"

    def run(self, function):
        if function.blocks[-1].instructions:
            function.blocks[-1].instructions.pop()
            return True
        return False


class TestPassPipelineValidation:
    def test_breaking_pass_is_named(self):
        function = make_worker()
        manager = PassManager([_BreakerPass()], verify=True)
        with pytest.raises(IRVerificationError) as info:
            manager.run_function(function)
        error = info.value
        assert error.pass_name == "terminator-dropper"
        assert "[after pass terminator-dropper]" in str(error)

    def test_verification_off_lets_bad_pass_through(self):
        function = make_worker()
        manager = PassManager([_BreakerPass()], verify=False)
        manager.run_function(function)  # no raise: validation disabled

    def test_env_flag_resolution(self, monkeypatch):
        monkeypatch.delenv("REPRO_VERIFY_IR", raising=False)
        assert verify_ir_enabled() is False
        assert verify_ir_enabled(True) is True
        monkeypatch.setenv("REPRO_VERIFY_IR", "1")
        assert verify_ir_enabled() is True
        assert verify_ir_enabled(False) is False
        monkeypatch.setenv("REPRO_VERIFY_IR", "off")
        assert verify_ir_enabled() is False

    def test_ir_error_carries_location_and_snippet(self):
        function = make_worker()
        function.blocks[0].instructions.pop()  # drop entry terminator
        with pytest.raises(IRVerificationError) as info:
            verify_function(function)
        error = info.value
        assert error.function_name == "worker0"
        assert error.block_name is not None
        assert str(error).startswith("worker0/")

    def test_verify_ir_option_accepted_end_to_end(self, simple_db):
        from repro.options import ExecOptions
        result = simple_db.execute(
            "select sum(price) as s from items",
            options=ExecOptions(mode="optimized", verify_ir=True))
        assert result.rows


# --------------------------------------------------------------------------- #
# lint
# --------------------------------------------------------------------------- #
def run_lint(tmp_path, source):
    path = tmp_path / "case.py"
    path.write_text(source)
    return lint_file(path, [cls() for cls in ALL_RULES])


class TestLint:
    def test_lock_discipline_fires(self, tmp_path):
        findings = run_lint(tmp_path, """
class T:
    def __init__(self):
        import threading
        self._lock = threading.Lock()
        self._rows = 0

    def guarded(self):
        with self._lock:
            self._rows = 1

    def unguarded(self):
        self._rows = 2
""")
        assert [f.rule for f in findings] == ["lock-discipline"]

    def test_locked_suffix_methods_are_exempt(self, tmp_path):
        findings = run_lint(tmp_path, """
class T:
    def guarded(self):
        with self._lock:
            self._rows = 1

    def _seal_tail_locked(self):
        self._rows = 2
""")
        assert findings == []

    def test_sealed_chunk_fires_and_allows_tail(self, tmp_path):
        findings = run_lint(tmp_path, """
class T:
    def bad(self, name, value):
        self._chunks[name][0].append(value)

    def good(self, name, value):
        self._chunks[name][-1].append(value)
""")
        assert [f.rule for f in findings] == ["sealed-chunk"]

    def test_sealed_chunk_tracks_aliases(self, tmp_path):
        findings = run_lint(tmp_path, """
class T:
    def bad(self, name, index, value):
        chunk = self._chunks[name][index]
        chunk.extend([value])
""")
        assert [f.rule for f in findings] == ["sealed-chunk"]

    def test_hot_path_lock_fires_on_renamed_externs(self, tmp_path):
        findings = run_lint(tmp_path, """
def make_update(state, big_lock):
    def update(ctx, *values):
        with big_lock:
            state.total += 1
    update.__name__ = f"rt_agg_update_3"
    return update
""")
        assert [f.rule for f in findings] == ["hot-path-lock"]

    def test_hot_path_allows_fallback_lock(self, tmp_path):
        findings = run_lint(tmp_path, """
def make_emit(state, fallback_lock):
    def emit(ctx, *values):
        with fallback_lock:
            state.rows.append(values)
    emit.__name__ = "rt_emit_row"
    return emit
""")
        assert findings == []

    def test_stats_key_fires(self, tmp_path):
        findings = run_lint(tmp_path, """
def report(stats, pass_stats):
    stats["rows"] = 1
    return pass_stats["cse"]
""")
        assert [f.rule for f in findings] == ["stats-key", "stats-key"]

    def test_suppression_comment(self, tmp_path):
        findings = run_lint(tmp_path, """
def report(stats):
    stats["rows"] = 1  # lint: ignore[stats-key]
""")
        assert findings == []

    def test_result_cache_key_fires_on_handrolled_key(self, tmp_path):
        findings = run_lint(tmp_path, """
def probe(self, sql, mode, values):
    return self.result_cache.get((sql, mode, tuple(values)), None)
""")
        assert [f.rule for f in findings] == ["result-cache-key"]

    def test_result_cache_key_allows_constructor(self, tmp_path):
        findings = run_lint(tmp_path, """
from repro.result_cache import result_cache_key

def probe(self, sql, mode, values):
    direct = self.result_cache.get(
        result_cache_key(sql, mode, values), None)
    key = result_cache_key(sql, mode, values)
    self.result_cache.put(key, {}, direct)
    return direct
""")
        assert findings == []

    def test_result_cache_key_ignores_other_caches(self, tmp_path):
        findings = run_lint(tmp_path, """
def probe(self, sql):
    return self.plan_cache.get(sql)
""")
        assert findings == []

    def test_engine_source_is_clean(self):
        rules = [cls() for cls in ALL_RULES]
        assert len(rules) >= 4
        findings = lint_paths([SRC_ROOT], rules)
        assert findings == [], "\n".join(str(f) for f in findings)
