"""Tests for the concurrent query scheduler subsystem.

Covers the shared worker pool (round-robin fairness, bounded threads,
error propagation), the compile executor, sessions, query tickets
(result / done / cancel / queue timings), admission control, and the
database close lifecycle.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro import Database, SQLType, TicketState
from repro.errors import (
    AdmissionError,
    BindError,
    DivisionByZeroError,
    ExecutionError,
    QueryCancelledError,
    SchedulerError,
)
from repro.scheduler import CompileExecutor, TaskSource, WorkerPool


def _sum_db(rows: int = 5000, **kwargs) -> Database:
    db = Database(morsel_size=256, **kwargs)
    db.create_table("t", [("a", SQLType.INT64)])
    db.insert("t", [(i,) for i in range(rows)])
    return db


SUM_SQL = "select sum(a) as s from t"


class _ListSource(TaskSource):
    """A scripted task source: N instant tasks appending a label to a log."""

    def __init__(self, pool: WorkerPool, label: str, count: int, log: list):
        self._pool = pool
        self._label = label
        self._remaining = count
        self._in_flight = 0
        self._log = log

    def claim(self):
        if self._remaining == 0:
            return None
        self._remaining -= 1
        self._in_flight += 1

        def task():
            self._log.append(self._label)
            with self._pool.condition:
                self._in_flight -= 1
                self._pool.condition.notify_all()

        return task

    @property
    def exhausted(self):
        return self._remaining == 0

    @property
    def finished(self):
        return self.exhausted and self._in_flight == 0


class _Blocker(TaskSource):
    """Occupies ``count`` pool workers until ``release`` is set."""

    def __init__(self, count: int):
        self._remaining = count
        self.release = threading.Event()
        self.started = threading.Semaphore(0)

    def claim(self):
        if self._remaining == 0:
            return None
        self._remaining -= 1

        def task():
            self.started.release()
            self.release.wait()

        return task

    @property
    def exhausted(self):
        return self._remaining == 0


class TestWorkerPool:
    def test_round_robin_across_sources(self):
        # Claim directly (single-threaded) so the interleaving is exact:
        # the cursor must alternate between the two attached sources.
        pool = WorkerPool(1)
        log: list[str] = []
        a = _ListSource(pool, "a", 3, log)
        b = _ListSource(pool, "b", 3, log)
        with pool.condition:
            pool._sources.extend([a, b])
            tasks = []
            task = pool._claim_locked()
            while task is not None:
                tasks.append(task)
                task = pool._claim_locked()
        for task in tasks:
            task()
        assert log == ["a", "b", "a", "b", "a", "b"]
        pool.close()

    def test_parallel_execution_draws_from_shared_pool(self):
        db = _sum_db(rows=20_000, workers=3)
        before = threading.active_count()
        expected = [(sum(range(20_000)),)]
        for _ in range(3):
            assert db.execute(SUM_SQL, mode="bytecode", threads=3).rows == \
                expected
            assert db.execute(SUM_SQL, mode="adaptive", threads=2).rows == \
                expected
        # Repeated parallel executions reuse the pool: at most the pool
        # workers plus the shared compile thread ever get added.
        assert threading.active_count() <= before + 3 + 1
        db.close()

    def test_worker_error_propagates_to_caller(self):
        db = _sum_db(rows=4000)
        with pytest.raises(DivisionByZeroError):
            db.execute("select sum(a / (a - a)) as s from t",
                       mode="bytecode", threads=4)
        # The pool survives a failed query and serves the next one.
        assert db.execute(SUM_SQL, mode="bytecode", threads=4).rows == \
            [(sum(range(4000)),)]
        db.close()

    def test_pool_close_is_idempotent_and_joins_workers(self):
        db = _sum_db()
        db.execute(SUM_SQL, mode="bytecode", threads=2)
        pool = db.worker_pool
        assert pool.alive_workers() > 0
        pool.close()
        pool.close()
        assert pool.alive_workers() == 0


class TestCompileExecutor:
    def test_jobs_run_and_close_drains(self):
        executor = CompileExecutor()
        seen = []
        futures = [executor.submit(lambda i=i: seen.append(i))
                   for i in range(5)]
        executor.close(wait=True)
        assert all(f.done() for f in futures)
        assert sorted(seen) == list(range(5))

    def test_submit_after_close_runs_inline(self):
        executor = CompileExecutor()
        executor.close(wait=True)
        seen = []
        future = executor.submit(lambda: seen.append("x"))
        assert future.done() and seen == ["x"]

    def test_job_exception_is_captured(self):
        executor = CompileExecutor()

        def boom():
            raise ValueError("nope")

        future = executor.submit(boom)
        assert future.wait(5)
        assert isinstance(future.exception(), ValueError)
        executor.close()


class TestTickets:
    def test_ticket_lifecycle_matches_execute(self):
        db = _sum_db()
        reference = db.execute(SUM_SQL).rows
        ticket = db.submit(SUM_SQL)
        result = ticket.result(timeout=30)
        assert result.rows == reference
        assert ticket.done()
        assert ticket.state is TicketState.DONE
        assert result.timings.queue >= 0
        assert ticket.queue_seconds is not None
        assert result.timings.latency >= result.timings.total
        db.close()

    def test_error_reraised_from_result(self):
        db = _sum_db()
        ticket = db.submit("select nope from missing_table")
        with pytest.raises(BindError):
            ticket.result(timeout=30)
        assert ticket.state is TicketState.FAILED
        assert db.scheduler.stats.failed == 1
        db.close()

    def test_invalid_mode_rejected_at_submit_time(self):
        db = _sum_db()
        with pytest.raises(ExecutionError):
            db.submit(SUM_SQL, mode="warp-speed")
        with pytest.raises(ExecutionError):
            db.submit(SUM_SQL, mode="volcano", threads=2)
        db.close()

    def test_cancel_pending_ticket(self):
        db = _sum_db(workers=1)
        blocker = _Blocker(1)
        db.worker_pool.attach(blocker)
        assert blocker.started.acquire(timeout=5)
        try:
            first = db.submit(SUM_SQL)
            second = db.submit(SUM_SQL)
            assert second.cancel()
            assert second.state is TicketState.CANCELLED
            with pytest.raises(QueryCancelledError):
                second.result(timeout=5)
        finally:
            blocker.release.set()
        assert first.result(timeout=30).rows == [(sum(range(5000)),)]
        # A finished ticket can no longer be cancelled.
        assert not first.cancel()
        assert db.scheduler.stats.cancelled == 1
        db.worker_pool.detach(blocker)
        db.close()

    def test_queue_time_measured_under_saturation(self):
        db = _sum_db(workers=1, max_concurrent=1)
        blocker = _Blocker(1)
        db.worker_pool.attach(blocker)
        assert blocker.started.acquire(timeout=5)
        ticket = db.submit(SUM_SQL)
        time.sleep(0.2)
        blocker.release.set()
        result = ticket.result(timeout=30)
        assert result.timings.queue >= 0.1
        db.worker_pool.detach(blocker)
        db.close()


class TestAdmissionControl:
    def test_bounded_queue_rejects_and_times_out(self):
        db = _sum_db(workers=1, max_concurrent=1, max_pending=1)
        blocker = _Blocker(1)
        db.worker_pool.attach(blocker)
        assert blocker.started.acquire(timeout=5)
        try:
            first = db.submit(SUM_SQL)
            with pytest.raises(AdmissionError):
                db.submit(SUM_SQL, block=False)
            with pytest.raises(AdmissionError):
                db.submit(SUM_SQL, timeout=0.05)
            assert db.scheduler.stats.rejected == 2
        finally:
            blocker.release.set()
        assert len(first.result(timeout=30).rows) == 1
        db.worker_pool.detach(blocker)
        db.close()

    def test_max_concurrent_bounds_running_queries(self):
        db = _sum_db(rows=20_000, workers=4, max_concurrent=2)
        tickets = [db.submit(SUM_SQL, mode="bytecode") for _ in range(10)]
        for ticket in tickets:
            assert ticket.result(timeout=60).rows == [(sum(range(20_000)),)]
        stats = db.scheduler.stats
        assert stats.completed == 10
        assert stats.peak_running <= 2
        assert stats.peak_pending >= 1
        db.close()

    def test_thread_count_bounded_with_many_in_flight(self):
        db = _sum_db(rows=30_000, workers=3)
        before = threading.active_count()
        tickets = [db.submit(SUM_SQL, mode="bytecode", use_cache=False)
                   for _ in range(16)]
        peak = 0
        while not all(t.done() for t in tickets):
            peak = max(peak, threading.active_count())
            time.sleep(0.005)
        for ticket in tickets:
            assert ticket.result(timeout=60).rows == [(sum(range(30_000)),)]
        # 16 queries in flight never put more than the pool (3 workers)
        # plus the shared compile thread on the machine.
        assert peak <= before + 3 + 1
        db.close()

    def test_scheduler_close_cancels_pending(self):
        db = _sum_db(workers=1)
        blocker = _Blocker(1)
        db.worker_pool.attach(blocker)
        assert blocker.started.acquire(timeout=5)
        pending = [db.submit(SUM_SQL) for _ in range(3)]
        db.scheduler.close(wait=True)
        assert all(t.state is TicketState.CANCELLED for t in pending)
        blocker.release.set()
        db.worker_pool.detach(blocker)
        db.close()


class TestSessions:
    def test_defaults_and_overrides(self):
        db = _sum_db()
        session = db.session(mode="bytecode", name="client-1")
        result = session.execute(SUM_SQL)
        assert result.mode == "bytecode"
        assert session.execute(SUM_SQL, mode="optimized").mode == "optimized"
        with pytest.raises(SchedulerError):
            session.execute(SUM_SQL, morsel_size=12)  # unknown override
        db.close()

    def test_stats_accumulate_across_execute_and_submit(self):
        db = _sum_db()
        session = db.session(mode="optimized")
        session.execute(SUM_SQL)
        session.submit(SUM_SQL).result(timeout=30)
        # db.submit with an explicit session= must count identically.
        db.submit(SUM_SQL, session=session).result(timeout=30)
        with pytest.raises(BindError):
            session.execute("select x from missing")
        stats = session.stats
        assert stats.submitted == 4
        assert stats.completed == 3
        assert stats.failed == 1
        assert stats.rows == 3
        assert stats.run_seconds > 0
        db.close()

    def test_closed_session_rejects_queries(self):
        db = _sum_db()
        with db.session() as session:
            session.execute(SUM_SQL)
        with pytest.raises(SchedulerError):
            session.execute(SUM_SQL)
        with pytest.raises(SchedulerError):
            session.submit(SUM_SQL)
        assert session.stats.completed == 1
        db.close()


class TestDatabaseLifecycle:
    def test_context_manager_closes_runtime(self):
        with Database(morsel_size=256) as db:
            db.create_table("t", [("a", SQLType.INT64)])
            db.insert("t", [(i,) for i in range(1000)])
            assert db.submit(SUM_SQL).result(timeout=30).rows == \
                [(sum(range(1000)),)]
            pool = db.worker_pool
        assert pool.closed and pool.alive_workers() == 0
        with pytest.raises(SchedulerError):
            db.submit(SUM_SQL)
        with pytest.raises(SchedulerError):
            db.session()
        # Synchronous execution still works after close.
        assert db.execute(SUM_SQL).rows == [(sum(range(1000)),)]

    def test_close_is_idempotent(self):
        db = _sum_db()
        db.submit(SUM_SQL).result(timeout=30)
        db.close()
        db.close()


class TestSatelliteFixes:
    def test_vm_instruction_counter_is_exact_under_concurrency(self):
        # One VirtualMachine instance is shared by all workers; the counter
        # must not lose updates when many queries finish morsels at once.
        def fresh_db():
            return _sum_db(rows=4096)

        single = fresh_db()
        single.execute(SUM_SQL, mode="bytecode")
        per_run = single.vm_instructions
        assert per_run > 0

        db = fresh_db()
        runs_per_thread = 5
        errors = []

        def client():
            try:
                for _ in range(runs_per_thread):
                    # use_result_cache=False: every run must reach the VM
                    # for the instruction count to be exact.
                    db.execute(SUM_SQL, mode="bytecode",
                               use_result_cache=False)
            except BaseException as exc:  # pragma: no cover - diagnostic
                errors.append(exc)

        threads = [threading.Thread(target=client) for _ in range(6)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert db.vm_instructions == 6 * runs_per_thread * per_run
        db.close()

    def test_insert_rows_is_row_atomic_on_encode_error(self):
        db = Database()
        db.create_table("p", [("id", SQLType.INT64),
                              ("price", SQLType.FLOAT64)])
        db.insert("p", [(0, 0.5)])
        # Prime the plan cache so stale-plan invalidation is observable.
        count_sql = "select count(*) as c from p"
        assert db.execute(count_sql).rows == [(1,)]
        version_before = db.catalog.table_version("p")
        with pytest.raises(Exception):
            # The second row fails to encode on its *second* column; the
            # first column of that row must not be left behind.
            db.insert("p", [(1, 1.5), (2, None), (3, 2.5)])
        table = db.catalog.table("p")
        assert table.num_rows == 2
        assert {name: len(data) for name, data in table.columns.items()} == \
            {"id": 2, "price": 2}
        # The partial batch still bumped the table version: cached plans and
        # statistics for 'p' cannot survive the half-applied insert.
        assert db.catalog.table_version("p") > version_before
        # The table stays queryable and consistent.
        assert db.execute(count_sql).rows == [(2,)]
