"""Integration tests of the network serving front end.

A real :class:`repro.server.QueryServer` on an ephemeral localhost port,
exercised through the blocking client library and -- for the protocol
edge cases -- through raw sockets.  Covered here:

* end-to-end correctness: many concurrent client connections running
  parameterized prepared queries across all execution modes, compared
  against in-process ``db.execute``,
* authentication rejection, malformed and oversized frames,
* admission-control backpressure surfacing as BUSY protocol errors,
* CANCEL semantics (pending query cancelled vs. racing completion),
* client disconnect mid-request releasing the admission slot,
* concurrent sessions sharing one prepared shape through the plan cache,
* graceful shutdown: ``Database.close`` drains servers first, is safe
  while queries are in flight, leaks no threads or sockets, and a second
  close is a no-op.

Determinism: the scheduler-pressure tests park a ``_Blocker`` task source
on a one-worker pool, so the admission queue fills and drains exactly on
cue instead of depending on query timing.
"""

from __future__ import annotations

import socket
import struct
import threading
import time

import pytest

from repro import Database, SQLType, connect
from repro.errors import (AuthenticationError, ProtocolError,
                          QueryCancelledError, ServerBusyError)
from repro.server import protocol
from repro.server.protocol import (FRAME_HEADER, FRAME_HEADER_BYTES,
                                   MAX_FRAME_BYTES, PROTOCOL_VERSION,
                                   decode_header, decode_payload,
                                   encode_frame)
from repro.scheduler import TaskSource


def build_db(rows: int = 400, **kwargs) -> Database:
    kwargs.setdefault("workers", 2)
    db = Database(morsel_size=64, **kwargs)
    db.create_table("t", [("a", SQLType.INT64), ("b", SQLType.FLOAT64),
                          ("s", SQLType.STRING)])
    db.insert("t", [(i, i * 0.5, f"row-{i % 10}") for i in range(rows)])
    return db


@pytest.fixture()
def served_db():
    db = build_db()
    server = db.serve()
    yield db, server
    db.close()


class _Blocker(TaskSource):
    """Occupies ``count`` pool workers until ``release`` is set."""

    def __init__(self, count: int):
        self._remaining = count
        self.release = threading.Event()
        self.started = threading.Semaphore(0)

    def claim(self):
        if self._remaining == 0:
            return None
        self._remaining -= 1

        def task():
            self.started.release()
            self.release.wait()

        return task

    @property
    def exhausted(self):
        return self._remaining == 0


@pytest.fixture()
def blocked_db():
    """A served database whose single pool worker is parked on a blocker.

    Submitted queries stay PENDING until ``blocker.release`` fires, so the
    admission queue (``max_pending=1``) fills deterministically.
    """
    db = build_db(rows=50, workers=1, max_concurrent=1, max_pending=1)
    blocker = _Blocker(1)
    db.worker_pool.attach(blocker)
    assert blocker.started.acquire(timeout=5)
    server = db.serve()
    yield db, server, blocker
    blocker.release.set()
    db.worker_pool.detach(blocker)
    db.close()


def _recv_exactly(sock: socket.socket, count: int) -> bytes:
    data = b""
    while len(data) < count:
        chunk = sock.recv(count - len(data))
        if not chunk:
            raise ConnectionError("peer closed")
        data += chunk
    return data


def _read_raw_frame(sock: socket.socket):
    length, frame_type = decode_header(
        _recv_exactly(sock, FRAME_HEADER_BYTES))
    payload = _recv_exactly(sock, length) if length else b""
    return decode_payload(frame_type, payload)


def _raw_handshake(server, token: str = "") -> socket.socket:
    sock = socket.create_connection(server.address, timeout=10)
    sock.settimeout(10)
    sock.sendall(encode_frame(protocol.Hello(token=token)))
    frame = _read_raw_frame(sock)
    assert isinstance(frame, protocol.Welcome)
    return sock


def _wait_until(predicate, timeout: float = 10.0, message: str = ""):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(0.01)
    raise AssertionError(message or "condition not reached in time")


# ---------------------------------------------------------------------- #
# end-to-end correctness
# ---------------------------------------------------------------------- #
ALL_MODES = ("adaptive", "bytecode", "unoptimized", "optimized",
             "volcano", "vectorized")
PARAM_SQL = ("select s, count(*) as n, sum(b) as total from t "
             "where a >= :lo and a < :hi group by s order by s")


def test_e2e_concurrent_clients_match_in_process_execution(served_db):
    db, server = served_db
    expected = {}
    for client in range(8):
        lo, hi = client * 10, client * 10 + 200
        expected[client] = db.execute(PARAM_SQL,
                                      params={"lo": lo, "hi": hi}).rows

    baseline_threads = set(threading.enumerate())
    errors: list[BaseException] = []

    def client_main(client: int) -> None:
        try:
            conn = connect(*server.address, session_name=f"c{client}")
            try:
                stmt = conn.prepare(PARAM_SQL)
                assert stmt.column_names == ["s", "n", "total"]
                assert [t.value for t in stmt.column_types] == [
                    "string", "int64", "float64"]
                lo, hi = client * 10, client * 10 + 200
                for run in range(6):
                    mode = ALL_MODES[(client + run) % len(ALL_MODES)]
                    result = stmt.execute(params={"lo": lo, "hi": hi},
                                          timeout=60, mode=mode)
                    assert result.mode == mode
                    assert result.rows == expected[client], (
                        f"client {client} mode {mode} diverged")
                stmt.close()
            finally:
                conn.close()
        except BaseException as exc:
            errors.append(exc)

    threads = [threading.Thread(target=client_main, args=(i,))
               for i in range(8)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(60)
    assert not errors, errors[0]
    assert db.metrics.get("server.connections_total").value >= 8

    # Graceful shutdown: server drains, scheduler/pool stop, and every
    # thread the serving stack spawned is gone again.
    db.close()
    assert server.closed
    _wait_until(lambda: set(threading.enumerate()) <= baseline_threads,
                message=f"leaked threads: "
                        f"{set(threading.enumerate()) - baseline_threads}")
    with pytest.raises(ConnectionError):
        socket.create_connection(server.address, timeout=2)


def test_adhoc_sql_and_batched_streaming(served_db):
    db, server = served_db
    conn = connect(*server.address)
    try:
        # batch_rows=7 forces multiple ROW_BATCH frames for 400 rows.
        result = conn.execute("select a, b, s from t order by a",
                              timeout=60, batch_rows=7)
        assert result.rows == db.execute(
            "select a, b, s from t order by a").rows
        assert len(result) == 400
    finally:
        conn.close()


def test_positional_parameters_and_decoded_rows(served_db):
    db, server = served_db
    db.create_table("flags", [("id", SQLType.INT64), ("ok", SQLType.BOOL),
                              ("d", SQLType.DATE)])
    db.insert("flags", [(1, True, "2024-02-29"), (2, False, "2024-03-01")])
    conn = connect(*server.address)
    try:
        result = conn.execute("select id, ok, d from flags where id = ?",
                              params=(1,), timeout=60)
        assert [t.value for t in result.column_types] == [
            "int64", "bool", "date"]
        (decoded,) = result.decoded_rows()
        assert decoded[1] is True
        assert decoded[2].isoformat() == "2024-02-29"
    finally:
        conn.close()


# ---------------------------------------------------------------------- #
# handshake / framing edge cases
# ---------------------------------------------------------------------- #
def test_auth_rejection_and_acceptance():
    db = build_db(rows=10)
    server = db.serve(auth_token="sesame")
    try:
        with pytest.raises(AuthenticationError):
            connect(*server.address, auth_token="wrong")
        with pytest.raises(AuthenticationError):
            connect(*server.address)  # empty token is wrong too
        assert db.metrics.get("server.auth_failures").value == 2

        conn = connect(*server.address, auth_token="sesame")
        try:
            assert conn.execute("select count(*) as n from t",
                                timeout=60).rows == [(10,)]
        finally:
            conn.close()
    finally:
        db.close()


def test_first_frame_must_be_hello(served_db):
    _, server = served_db
    sock = socket.create_connection(server.address, timeout=10)
    sock.settimeout(10)
    try:
        sock.sendall(encode_frame(protocol.Prepare(request_id=1, sql="x")))
        frame = _read_raw_frame(sock)
        assert isinstance(frame, protocol.Error)
        assert frame.code == "PROTOCOL"
        assert frame.request_id == protocol.CONNECTION_REQUEST_ID
        # The server closes the connection after the handshake failure.
        assert sock.recv(1) == b""
    finally:
        sock.close()


def test_unsupported_protocol_version_is_rejected(served_db):
    _, server = served_db
    sock = socket.create_connection(server.address, timeout=10)
    sock.settimeout(10)
    try:
        sock.sendall(encode_frame(protocol.Hello(protocol_version=99)))
        frame = _read_raw_frame(sock)
        assert isinstance(frame, protocol.Error)
        assert frame.code == "PROTOCOL"
        assert "version" in frame.message
    finally:
        sock.close()


def test_malformed_frame_closes_connection(served_db):
    db, server = served_db
    sock = _raw_handshake(server)
    try:
        # A PREPARE whose payload is garbage: undecodable -> connection-
        # level PROTOCOL error, then close.
        sock.sendall(FRAME_HEADER.pack(3, protocol.PREPARE) + b"\xff\xff\xff")
        frame = _read_raw_frame(sock)
        assert isinstance(frame, protocol.Error)
        assert frame.code == "PROTOCOL"
        assert sock.recv(1) == b""
        assert db.metrics.get("server.protocol_errors").value >= 1
    finally:
        sock.close()


def test_oversized_frame_is_rejected_without_buffering(served_db):
    _, server = served_db
    sock = _raw_handshake(server)
    try:
        # Announce a payload over the limit; send nothing more.  The server
        # must reject from the header alone.
        sock.sendall(FRAME_HEADER.pack(MAX_FRAME_BYTES + 1, protocol.EXECUTE))
        frame = _read_raw_frame(sock)
        assert isinstance(frame, protocol.Error)
        assert frame.code == "PROTOCOL"
        assert "exceeds" in frame.message
        assert sock.recv(1) == b""
    finally:
        sock.close()


def test_empty_execute_and_unknown_statement_are_request_errors(served_db):
    _, server = served_db
    conn = connect(*server.address)
    try:
        pending = conn.execute_async("")  # neither SQL nor statement id
        with pytest.raises(ProtocolError, match="neither SQL nor"):
            pending.result(timeout=60)

        fake = conn._next_request()
        conn._send(protocol.Execute(request_id=fake.request_id,
                                    statement_id=12345))
        frame = fake.frames.get(timeout=30)
        conn._forget(fake)
        assert isinstance(frame, protocol.Error)
        assert frame.code == "PROTOCOL"
        assert "unknown statement id" in frame.message

        # The connection survives request-level errors.
        assert conn.execute("select count(*) as n from t",
                            timeout=60).rows == [(400,)]
    finally:
        conn.close()


def test_sql_errors_travel_as_typed_error_frames(served_db):
    _, server = served_db
    conn = connect(*server.address)
    try:
        from repro.errors import ServerError
        with pytest.raises(ServerError) as excinfo:
            conn.execute("select nope from missing_table", timeout=60)
        assert excinfo.value.code in ("SQL", "EXECUTION")
        # And the connection keeps working afterwards.
        assert conn.execute("select count(*) as n from t",
                            timeout=60).rows == [(400,)]
    finally:
        conn.close()


# ---------------------------------------------------------------------- #
# backpressure / cancel / disconnect under a blocked pool
# ---------------------------------------------------------------------- #
def test_busy_surfaces_as_protocol_error_not_hang(blocked_db):
    db, server, blocker = blocked_db
    conn = connect(*server.address)
    try:
        first = conn.execute_async("select sum(a) as s from t")
        # The pending queue (size 1) is now full; the next EXECUTE must be
        # rejected with BUSY immediately, not queue or hang.
        with pytest.raises(ServerBusyError) as excinfo:
            conn.execute("select sum(a) as s from t", timeout=30)
        assert excinfo.value.code == "BUSY"
        assert excinfo.value.retry_after_ms >= 0
        assert db.metrics.get("server.busy_rejections").value == 1

        blocker.release.set()
        expected = db.execute("select sum(a) as s from t").rows
        assert first.result(timeout=60).rows == expected
    finally:
        conn.close()


def test_cancel_pending_query_and_cancel_racing_completion(blocked_db):
    db, server, blocker = blocked_db
    conn = connect(*server.address)
    try:
        pending = conn.execute_async("select sum(a) as s from t")
        _wait_until(lambda: db.scheduler.pending_count == 1)
        assert pending.cancel() is True
        with pytest.raises(QueryCancelledError):
            pending.result(timeout=30)
        assert db.scheduler.stats.cancelled == 1

        # Cancel racing completion: by the time the CANCEL frame arrives
        # the query has finished -- cancel reports False and the full
        # result still arrives.
        blocker.release.set()
        done = conn.execute_async("select count(*) as n from t")
        result = done.result(timeout=60)
        assert result.rows == [(50,)]
        late = conn._cancel(done.request_id, timeout=30)
        assert late is False
    finally:
        conn.close()


def test_client_disconnect_mid_request_releases_admission_slot(blocked_db):
    db, server, blocker = blocked_db
    sock = _raw_handshake(server)
    sock.sendall(encode_frame(protocol.Execute(
        request_id=1, sql="select sum(a) as s from t")))
    _wait_until(lambda: db.scheduler.pending_count == 1)
    # Abrupt disconnect: no GOODBYE, just a dead socket.  The server must
    # cancel the pending ticket, freeing its admission-queue slot.
    sock.close()
    _wait_until(lambda: db.scheduler.stats.cancelled == 1,
                message="disconnect did not cancel the in-flight ticket")
    _wait_until(lambda: db.scheduler.pending_count == 0)
    _wait_until(lambda: server.active_connections == 0)

    # The freed slot admits new work from a fresh connection.
    blocker.release.set()
    conn = connect(*server.address)
    try:
        assert conn.execute("select count(*) as n from t",
                            timeout=60).rows == [(50,)]
    finally:
        conn.close()


# ---------------------------------------------------------------------- #
# plan-cache sharing across sessions
# ---------------------------------------------------------------------- #
def test_concurrent_sessions_share_one_prepared_shape(served_db):
    db, server = served_db
    sql = "select s, count(*) as n from t where a < :x group by s order by s"
    hits_before = db.plan_cache.stats.hits
    entries_before = len(db.plan_cache)

    connections = [connect(*server.address, session_name=f"share-{i}")
                   for i in range(3)]
    try:
        statements = [conn.prepare(sql) for conn in connections]
        # One PREPARE built the entry; the other two hit the shared cache.
        assert len(db.plan_cache) == entries_before + 1
        assert db.plan_cache.stats.hits >= hits_before + 2
        expected = db.execute(sql, params={"x": 123}).rows
        for stmt in statements:
            assert stmt.execute(params={"x": 123},
                                timeout=60).rows == expected
    finally:
        for conn in connections:
            conn.close()


# ---------------------------------------------------------------------- #
# lifecycle: Database.close with in-flight queries, idempotence, metrics
# ---------------------------------------------------------------------- #
def test_database_close_is_safe_with_queries_in_flight():
    db = build_db(rows=50, workers=1, max_concurrent=1, max_pending=4)
    blocker = _Blocker(1)
    db.worker_pool.attach(blocker)
    assert blocker.started.acquire(timeout=5)
    tickets = [db.submit("select sum(a) as s from t") for _ in range(3)]

    closer_done = threading.Event()

    def closer() -> None:
        # Deadline-bounded close: pending tickets are cancelled, the
        # blocked pool is abandoned at the deadline instead of hanging.
        db.close(timeout=1.0)
        closer_done.set()

    thread = threading.Thread(target=closer)
    thread.start()
    assert closer_done.wait(timeout=15), "close() hung on in-flight queries"
    thread.join(5)

    for ticket in tickets:
        assert ticket.done()
        with pytest.raises(QueryCancelledError):
            ticket.result(timeout=5)

    # Double close is a no-op, and the serving entry points now refuse.
    db.close()
    db.close(timeout=0.1)
    from repro.errors import SchedulerError
    with pytest.raises(SchedulerError):
        db.submit("select 1 as x")
    with pytest.raises(SchedulerError):
        db.serve()

    blocker.release.set()


def test_server_close_is_idempotent_and_unregisters():
    db = build_db(rows=10)
    server = db.serve()
    assert server in db._servers
    server.close()
    server.close()
    assert server not in db._servers
    # A new server can be started afterwards; db.close() then closes it.
    second = db.serve()
    db.close()
    assert second.closed
    db.close()  # still a no-op


def test_server_and_scheduler_metrics_reach_prometheus(served_db):
    db, server = served_db
    conn = connect(*server.address)
    try:
        conn.prepare("select count(*) as n from t")
        conn.execute("select count(*) as n from t", timeout=60)
    finally:
        conn.close()
    _wait_until(lambda: server.active_connections == 0)

    text = db.metrics.to_prometheus()
    for needle in (
            "repro_server_connections_total 1",
            "repro_server_active_connections 0",
            "repro_server_in_flight_requests 0",
            "repro_server_requests_total_hello 1",
            "repro_server_requests_total_prepare 1",
            "repro_server_requests_total_execute 1",
            "repro_server_request_seconds_count 1",
            "repro_scheduler_completed 1",
    ):
        assert needle in text, f"missing {needle!r} in prometheus output"
    flat = db.metrics.flat_snapshot()
    assert flat["server.bytes_sent"] > 0
    assert flat["server.bytes_received"] > 0


# --------------------------------------------------------------------------- #
# EXECUTE_MANY
# --------------------------------------------------------------------------- #
def test_execute_many_round_trip_matches_in_process(served_db):
    db, server = served_db
    sql = "select sum(b) as s from t where a % 10 = ?"
    bindings = [(1,), (2,), (1,), (3,)]
    expected = [db.execute(sql, params=b, use_result_cache=False).rows
                for b in bindings]
    db.result_cache.clear()
    conn = connect(*server.address)
    try:
        results = conn.execute_many(sql, bindings=bindings, timeout=60)
        assert [r.rows for r in results] == expected
        # Intra-batch dedup: the repeated binding shares the first's result.
        assert results[2].cache_source == "result"
        assert all(r.mode == results[0].mode for r in results)

        # The whole batch again: every binding is answerable from the
        # result cache, so the server serves it on the loop thread without
        # consuming a scheduler admission slot.
        before = db.metrics.flat_snapshot()["server.result_cache_serves"]
        repeat = conn.execute_many(sql, bindings=bindings, timeout=60)
        assert [r.rows for r in repeat] == expected
        assert all(r.cached and r.cache_source == "result" for r in repeat)
        after = db.metrics.flat_snapshot()["server.result_cache_serves"]
        assert after == before + 1
    finally:
        conn.close()


def test_execute_many_via_prepared_statement(served_db):
    db, server = served_db
    conn = connect(*server.address)
    try:
        stmt = conn.prepare("select count(*) as n from t where a < ?")
        results = stmt.execute_many([(10,), (20,), (10,)], timeout=60)
        assert [r.rows for r in results] == [[(10,)], [(20,)], [(10,)]]
        assert results[2].cache_source == "result"
    finally:
        conn.close()


def test_execute_many_without_bindings_is_a_request_error(served_db):
    _db, server = served_db
    conn = connect(*server.address)
    try:
        with pytest.raises(ProtocolError):
            conn.execute_many("select count(*) as n from t",
                              bindings=[], timeout=60)
        # The connection survives the request-level error.
        result = conn.execute("select count(*) as n from t", timeout=60)
        assert result.rows == [(400,)]
    finally:
        conn.close()


def test_repeated_execute_skips_admission(served_db):
    db, server = served_db
    sql = "select sum(b) as s from t where a >= ?"
    conn = connect(*server.address)
    try:
        first = conn.execute(sql, params=(100,), timeout=60)
        submitted_before = db.scheduler.stats.submitted
        second = conn.execute(sql, params=(100,), timeout=60)
        assert second.rows == first.rows
        assert second.cached
        # Served from the result cache on the loop thread: no new
        # scheduler submission, and the fast-path counter moved.
        assert db.scheduler.stats.submitted == submitted_before
        assert db.metrics.flat_snapshot()["server.result_cache_serves"] >= 1
    finally:
        conn.close()
