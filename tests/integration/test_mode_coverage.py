"""Per-mode workload coverage report: TPC-H and TPC-DS end-to-end.

Every execution mode is driven through the *entire* TPC-H (22 queries) and
TPC-DS (7 queries) workloads; the test counts how many queries run
end-to-end per mode and fails if any mode drops below its recorded floor.
The floors are the full workload sizes -- every query runs in every mode
today -- so any regression (a query a mode stops handling) fails this test
with a report naming the mode and the query instead of silently shrinking
the supported surface.

Run with ``-s`` to see the per-mode coverage table.
"""

from __future__ import annotations

import pytest

from repro import BASELINE_MODES, ENGINE_MODES
from repro.workloads import TPCDS_QUERIES, TPCH_QUERIES, populate_tpcds

ALL_MODES = list(ENGINE_MODES) + list(BASELINE_MODES)

#: Minimum number of workload queries each mode must run end-to-end.
#: Raise a floor when a mode gains coverage; never lower one.
COVERAGE_FLOORS = {
    "tpch": {mode: len(TPCH_QUERIES) for mode in ALL_MODES},
    "tpcds": {mode: len(TPCDS_QUERIES) for mode in ALL_MODES},
}


@pytest.fixture(scope="module")
def tpcds_db():
    return populate_tpcds(fact_rows=400)


def _run_workload(db, queries, mode):
    """Execute every query of one workload in one mode; return the failures
    as ``[(query_id, error)]`` (empty means full coverage)."""
    failures = []
    for query_id in sorted(queries):
        try:
            result = db.execute(queries[query_id], mode=mode)
            assert result.rows is not None
        except Exception as exc:  # noqa: BLE001 - coverage accounting
            failures.append((query_id, f"{type(exc).__name__}: {exc}"))
    return failures


@pytest.mark.parametrize("mode", ALL_MODES)
def test_tpch_mode_coverage(tpch_db_tiny, mode):
    failures = _run_workload(tpch_db_tiny, TPCH_QUERIES, mode)
    passed = len(TPCH_QUERIES) - len(failures)
    floor = COVERAGE_FLOORS["tpch"][mode]
    print(f"\n[coverage] tpch {mode}: {passed}/{len(TPCH_QUERIES)} "
          f"(floor {floor})")
    assert passed >= floor, (
        f"TPC-H coverage regression in mode {mode!r}: "
        f"{passed}/{len(TPCH_QUERIES)} < floor {floor}; failures: {failures}")


@pytest.mark.parametrize("mode", ALL_MODES)
def test_tpcds_mode_coverage(tpcds_db, mode):
    failures = _run_workload(tpcds_db, TPCDS_QUERIES, mode)
    passed = len(TPCDS_QUERIES) - len(failures)
    floor = COVERAGE_FLOORS["tpcds"][mode]
    print(f"\n[coverage] tpcds {mode}: {passed}/{len(TPCDS_QUERIES)} "
          f"(floor {floor})")
    assert passed >= floor, (
        f"TPC-DS coverage regression in mode {mode!r}: "
        f"{passed}/{len(TPCDS_QUERIES)} < floor {floor}; "
        f"failures: {failures}")


# --------------------------------------------------------------------------- #
# static verification sweep: every workload module, both verifiers, zero
# findings -- over the pristine IR, the bytecode translation, the register
# allocation, and the optimized clone after the full pass pipeline.
# --------------------------------------------------------------------------- #
def _static_verify_module(module, label):
    from repro.analysis import (check_extern_contracts, verify_allocation,
                                verify_bytecode)
    from repro.backend.compiler import _clone_function
    from repro.ir import verify_function
    from repro.passes import default_pipeline
    from repro.vm import allocate_registers, translate_function

    findings = check_extern_contracts(module)
    assert findings == [], (
        f"{label}: extern-contract findings: "
        + "; ".join(str(f) for f in findings))
    for function in module.functions.values():
        verify_function(function)
        bytecode, _ = translate_function(function)
        verify_bytecode(bytecode)
        verify_allocation(function, allocate_registers(function))
        # The optimized tier's clone must stay verifiable after every pass
        # (the pipeline re-verifies per pass with verify=True) and still
        # translate to clean bytecode afterwards.
        clone = _clone_function(function)
        default_pipeline(verify=True).run_function(clone)
        verify_function(clone)
        optimized_bytecode, _ = translate_function(clone)
        verify_bytecode(optimized_bytecode)
        verify_allocation(clone, allocate_registers(clone))


def test_tpch_static_verification_sweep(tpch_db_tiny):
    """All 22 TPC-H modules pass both verifiers with zero findings, before
    and after optimization."""
    for number in sorted(TPCH_QUERIES):
        generated, _, _ = tpch_db_tiny.generate(TPCH_QUERIES[number])
        _static_verify_module(generated.module, f"tpch q{number}")


def test_tpcds_static_verification_sweep(tpcds_db):
    """All 7 TPC-DS modules pass both verifiers with zero findings, before
    and after optimization."""
    for number in sorted(TPCDS_QUERIES):
        generated, _, _ = tpcds_db.generate(TPCDS_QUERIES[number])
        _static_verify_module(generated.module, f"tpcds q{number}")


def test_ordered_limit_workload_queries_agree_across_modes(tpch_db_tiny):
    """The TPC-H queries with ORDER BY + LIMIT (the top-k breaker's
    workload surface) return identical rows in every mode, with the
    breaker on and off."""
    from repro.options import ExecOptions

    topk_queries = [number for number, sql in TPCH_QUERIES.items()
                    if "limit" in sql.lower() and "order by" in sql.lower()]
    assert len(topk_queries) >= 5  # the workload genuinely exercises top-k
    for number in topk_queries:
        sql = TPCH_QUERIES[number]
        reference = None
        for mode in ALL_MODES:
            for options in (ExecOptions(mode=mode),
                            ExecOptions(mode=mode, use_topk_breaker=False)):
                rows = tpch_db_tiny.execute(sql, options=options).rows
                if reference is None:
                    reference = rows
                assert rows == reference, (number, mode, options)
