"""Integration tests: cross-mode and cross-engine result equality."""

import datetime as dt

import pytest

from repro import Database, SQLType

sys_path_conftest = None  # conftest handles sys.path

ALL_MODES = ["ir-interp", "bytecode", "unoptimized", "optimized", "adaptive",
             "volcano", "vectorized"]


def normalized(rows, digits=4):
    out = []
    for row in rows:
        out.append(tuple(round(v, digits) if isinstance(v, float) else v
                         for v in row))
    return out


@pytest.fixture(scope="module")
def sales_db():
    db = Database(morsel_size=512)
    db.create_table("sales", [("s_id", SQLType.INT64),
                              ("s_product", SQLType.INT64),
                              ("s_store", SQLType.INT64),
                              ("s_amount", SQLType.DECIMAL),
                              ("s_quantity", SQLType.INT64),
                              ("s_date", SQLType.DATE),
                              ("s_channel", SQLType.STRING)])
    db.create_table("products", [("p_id", SQLType.INT64),
                                 ("p_name", SQLType.STRING),
                                 ("p_category", SQLType.STRING),
                                 ("p_price", SQLType.DECIMAL)])
    db.create_table("stores", [("st_id", SQLType.INT64),
                               ("st_region", SQLType.STRING)])
    import random
    rng = random.Random(99)
    db.insert("products", [(i, f"product-{i}",
                            ["toys", "food", "tools"][i % 3],
                            round(rng.uniform(1, 50), 2)) for i in range(30)])
    db.insert("stores", [(i, ["north", "south", "east", "west"][i % 4])
                         for i in range(8)])
    db.insert("sales", [
        (i, rng.randrange(30), rng.randrange(8),
         round(rng.uniform(1, 500), 2), rng.randint(1, 20),
         dt.date(1996, 1, 1) + dt.timedelta(days=rng.randrange(700)),
         rng.choice(["web", "store"]))
        for i in range(4000)])
    return db


QUERIES = {
    "filter-project": """
        select s_id, s_amount * 2 as doubled from sales
        where s_quantity > 15 and s_channel = 'web' order by s_id limit 50
    """,
    "scalar-aggregate": """
        select sum(s_amount) as total, count(*) as cnt, avg(s_quantity) as aq,
               min(s_quantity) as mn, max(s_quantity) as mx
        from sales where s_date >= date '1996-06-01'
    """,
    "group-by": """
        select s_store, count(*) as cnt, sum(s_amount) as total
        from sales group by s_store order by s_store
    """,
    "join-group": """
        select p_category, st_region, sum(s_amount) as revenue, count(*) as n
        from sales, products, stores
        where s_product = p_id and s_store = st_id and p_price > 10.0
        group by p_category, st_region
        order by revenue desc limit 10
    """,
    "having": """
        select s_product, sum(s_quantity) as q from sales
        group by s_product having sum(s_quantity) > 100 order by q desc
    """,
    "case-in-between": """
        select s_store,
               sum(case when s_channel = 'web' then s_amount else 0.0 end) as web_amount,
               sum(case when s_channel = 'store' then s_amount else 0.0 end) as store_amount
        from sales
        where s_quantity between 2 and 18 and s_store in (1, 2, 3, 4, 5)
        group by s_store order by s_store
    """,
    "like-distinct": """
        select distinct p_category from products where p_name like 'product-1%'
        order by p_category
    """,
    "date-extract": """
        select year(s_date) as y, count(*) as cnt from sales
        group by year(s_date) order by y
    """,
    "empty-result": """
        select s_id from sales where s_quantity > 1000
    """,
    "cross-small": """
        select count(*) as n from products, stores where p_id = 1
    """,
}


@pytest.mark.parametrize("query_name", sorted(QUERIES))
def test_all_modes_agree(sales_db, query_name):
    """Every execution mode and baseline engine returns identical results."""
    sql = QUERIES[query_name]
    reference = None
    for mode in ALL_MODES:
        result = sales_db.execute(sql, mode=mode)
        rows = normalized(result.rows)
        if reference is None:
            reference = rows
        else:
            assert rows == reference, f"{mode} differs on {query_name}"


@pytest.mark.parametrize("mode", ["bytecode", "optimized", "adaptive"])
def test_threaded_execution_agrees(sales_db, mode):
    sql = QUERIES["join-group"]
    single = normalized(sales_db.execute(sql, mode=mode, threads=1).rows)
    multi = normalized(sales_db.execute(sql, mode=mode, threads=4).rows)
    assert single == multi


def test_phase_timings_populated(sales_db):
    # use_cache=False: this test measures the cold path; a plan-cache hit
    # legitimately reports 0 for the parse/bind/plan/codegen/compile phases.
    result = sales_db.execute(QUERIES["group-by"], mode="optimized",
                              use_cache=False)
    timings = result.timings
    assert timings.parse > 0
    assert timings.bind > 0
    assert timings.plan > 0
    assert timings.codegen > 0
    assert timings.compile > 0
    assert timings.execution > 0
    assert timings.total == pytest.approx(
        timings.parse + timings.bind + timings.plan + timings.codegen
        + timings.compile + timings.execution)


def test_compile_time_ordering(sales_db):
    """Bytecode translation is cheaper than unoptimized, which is cheaper
    than optimized compilation (paper Fig. 3)."""
    sql = QUERIES["join-group"]
    # use_cache=False: compile is 0 on a plan-cache hit (tiers are reused).
    bytecode = sales_db.execute(sql, mode="bytecode",
                                use_cache=False).timings.compile
    unoptimized = sales_db.execute(sql, mode="unoptimized",
                                   use_cache=False).timings.compile
    optimized = sales_db.execute(sql, mode="optimized",
                                 use_cache=False).timings.compile
    assert bytecode < unoptimized < optimized


def test_execution_time_ordering(sales_db):
    """Interpretation is slower than compiled execution on a large enough
    input (paper Fig. 2 / Table II)."""
    sql = "select sum(s_amount * (1 - 0.05) + s_quantity) as v from sales"
    bytecode = sales_db.execute(sql, mode="bytecode").timings.execution
    optimized = sales_db.execute(sql, mode="optimized").timings.execution
    assert optimized < bytecode


def test_pipeline_stats_reported(sales_db):
    # use_result_cache=False: pipeline stats only exist on a real
    # execution, and the shared fixture may have run this query already.
    result = sales_db.execute(QUERIES["join-group"], mode="optimized",
                              use_result_cache=False)
    assert len(result.pipelines) >= 3
    assert all(p.ir_instructions > 0 for p in result.pipelines)


def test_decoded_rows_returns_dates(sales_db):
    result = sales_db.execute(
        "select s_date from sales order by s_date limit 1", mode="bytecode")
    decoded = result.decoded_rows()
    assert isinstance(decoded[0][0], dt.date)


def test_unknown_mode_rejected(sales_db):
    with pytest.raises(Exception):
        sales_db.execute("select 1 from sales", mode="quantum")


def test_overflow_detected_in_all_engine_modes():
    db = Database()
    db.create_table("big", [("v", SQLType.INT64)])
    db.insert("big", [(2 ** 62,), (2 ** 62,)])
    for mode in ("bytecode", "unoptimized", "optimized"):
        with pytest.raises(Exception):
            db.execute("select v * 4 as w from big", mode=mode)
