"""Parameter equivalence: ``execute(sql, params)`` == the literal-inlined
query, in every engine mode and both baseline modes.

This is the tentpole invariant of the parameterized statement API: one
compiled artifact evaluated with runtime parameter-slot loads must produce
exactly the rows the literal form produces, regardless of the execution
tier (ir-interp / bytecode / unoptimized / optimized / adaptive) or the
interpretation baseline (volcano / vectorized).
"""

from __future__ import annotations

import datetime as dt
import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import BASELINE_MODES, ENGINE_MODES, Database, SQLType

ALL_MODES = list(ENGINE_MODES) + list(BASELINE_MODES)


def normalized(rows, digits=6):
    out = []
    for row in rows:
        out.append(tuple(round(v, digits) if isinstance(v, float) else v
                         for v in row))
    return sorted(out)


@pytest.fixture(scope="module")
def param_db():
    db = Database(morsel_size=256)
    db.create_table("orders", [("o_id", SQLType.INT64),
                               ("o_customer", SQLType.INT64),
                               ("o_total", SQLType.DECIMAL),
                               ("o_discount", SQLType.FLOAT64),
                               ("o_date", SQLType.DATE),
                               ("o_status", SQLType.STRING)])
    db.create_table("customers", [("c_id", SQLType.INT64),
                                  ("c_segment", SQLType.STRING)])
    rng = random.Random(4242)
    db.insert("customers", [(i, ["gold", "silver", "bronze"][i % 3])
                            for i in range(20)])
    db.insert("orders", [
        (i, rng.randrange(20), round(rng.uniform(5, 400), 2),
         round(rng.uniform(0.0, 0.3), 3),
         dt.date(1997, 1, 1) + dt.timedelta(days=rng.randrange(500)),
         rng.choice(["open", "shipped", "returned"]))
        for i in range(1500)])
    yield db
    db.close()


#: (parameterized sql, literal template, parameter values)
TEMPLATES = [
    ("select count(*) as c from orders where o_customer = ?",
     "select count(*) as c from orders where o_customer = {0}",
     (7,)),
    ("select sum(o_total) as s from orders where o_total > ? "
     "and o_discount <= ?",
     "select sum(o_total) as s from orders where o_total > {0} "
     "and o_discount <= {1}",
     (150, 0.2)),
    ("select o_status, count(*) as c from orders "
     "where o_date >= ? group by o_status order by o_status",
     "select o_status, count(*) as c from orders "
     "where o_date >= date '{0}' group by o_status order by o_status",
     ("1997-06-01",)),
    ("select c.c_segment, sum(o.o_total) as s from orders o "
     "join customers c on o.o_customer = c.c_id "
     "where o.o_total between ? and ? and c.c_segment = ? "
     "group by c.c_segment",
     "select c.c_segment, sum(o.o_total) as s from orders o "
     "join customers c on o.o_customer = c.c_id "
     "where o.o_total between {0} and {1} and c.c_segment = '{2}' "
     "group by c.c_segment",
     (50, 300, "gold")),
    ("select o_id, o_total * (1.0 - ?) as net from orders "
     "where o_customer in (?, ?) order by o_id limit 20",
     "select o_id, o_total * (1.0 - {0}) as net from orders "
     "where o_customer in ({1}, {2}) order by o_id limit 20",
     (0.1, 3, 11)),
]


@pytest.mark.parametrize("mode", ALL_MODES)
@pytest.mark.parametrize("case", range(len(TEMPLATES)))
def test_parameterized_equals_literal(param_db, mode, case):
    param_sql, literal_template, values = TEMPLATES[case]
    literal_sql = literal_template.format(*values)
    literal = param_db.execute(literal_sql, mode=mode, use_cache=False)
    parameterized = param_db.execute(param_sql, mode=mode, params=values)
    assert normalized(parameterized.rows) == normalized(literal.rows)
    # Re-execute with the same parameters through the cached artifact.
    again = param_db.execute(param_sql, mode=mode, params=values)
    assert normalized(again.rows) == normalized(literal.rows)


@pytest.mark.parametrize("mode", ALL_MODES)
def test_rebinding_sweep_matches_literals(param_db, mode):
    """One cached artifact, many bindings: each must match its literal."""
    param_sql = ("select count(*) as c, sum(o_total) as s from orders "
                 "where o_customer = ? and o_total > ?")
    for customer in range(0, 20, 3):
        literal = param_db.execute(
            f"select count(*) as c, sum(o_total) as s from orders "
            f"where o_customer = {customer} and o_total > 100",
            mode=mode, use_cache=False)
        bound = param_db.execute(param_sql, mode=mode,
                                 params=(customer, 100))
        assert normalized(bound.rows) == normalized(literal.rows)


@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow,
                                 HealthCheck.function_scoped_fixture])
@given(threshold=st.integers(min_value=-50, max_value=450),
       discount=st.floats(min_value=0.001, max_value=0.375,
                          allow_nan=False, allow_infinity=False),
       mode=st.sampled_from(ALL_MODES))
def test_property_random_bindings(param_db, threshold, discount, mode):
    # repr() round-trips the float exactly; discounts >= 0.001 keep it free
    # of exponent notation, which the SQL lexer does not accept.
    literal = param_db.execute(
        f"select count(*) as c from orders "
        f"where o_total > {threshold} and o_discount < {discount!r}",
        mode=mode, use_cache=False)
    bound = param_db.execute(
        "select count(*) as c from orders "
        "where o_total > ? and o_discount < ?",
        mode=mode, params=(threshold, discount))
    assert bound.rows == literal.rows


def test_auto_parameterization_matches_cold_literals(param_db):
    """The transparent rewrite must never change results."""
    rng = random.Random(7)
    shape = ("select o_status, count(*) as c from orders "
             "where o_customer = {0} and o_total > {1} "
             "group by o_status order by o_status")
    for _ in range(15):
        sql = shape.format(rng.randrange(20), rng.randrange(400))
        hot = param_db.execute(sql)  # auto-parameterized, cached
        cold = param_db.execute(sql, use_cache=False)
        assert normalized(hot.rows) == normalized(cold.rows)
