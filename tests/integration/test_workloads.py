"""Integration tests over the benchmark workloads (TPC-H, TPC-DS, metadata,
machine-generated wide queries)."""

import pytest

from repro.workloads import (
    METADATA_QUERIES,
    TPCDS_QUERIES,
    TPCH_QUERIES,
    populate_metadata,
    populate_tpcds,
    populate_wide_table,
    wide_aggregate_query,
)
from repro.workloads.tpch.datagen import table_sizes


def normalized(rows, digits=3):
    out = []
    for row in rows:
        out.append(tuple(round(v, digits) if isinstance(v, float) else v
                         for v in row))
    return out


class TestTPCHDatagen:
    def test_row_counts_scale(self, tpch_db):
        assert tpch_db.catalog.table("region").num_rows == 5
        assert tpch_db.catalog.table("nation").num_rows == 25
        assert tpch_db.catalog.table("lineitem").num_rows > \
            tpch_db.catalog.table("orders").num_rows

    def test_table_sizes_ratios(self):
        sizes = table_sizes(1.0)
        assert sizes["lineitem"] == 4 * sizes["orders"]
        assert sizes["partsupp"] == 4 * sizes["part"]

    def test_deterministic(self):
        from repro.workloads import populate_tpch

        a = populate_tpch(scale_factor=0.01, seed=5)
        b = populate_tpch(scale_factor=0.01, seed=5)
        assert a.catalog.table("lineitem").column_data("l_quantity") == \
            b.catalog.table("lineitem").column_data("l_quantity")

    def test_foreign_keys_resolve(self, tpch_db):
        customers = set(tpch_db.catalog.table("customer").column_data("c_custkey"))
        order_custkeys = set(tpch_db.catalog.table("orders").column_data("o_custkey"))
        assert order_custkeys <= customers


@pytest.mark.parametrize("query_number", sorted(TPCH_QUERIES))
def test_tpch_query_modes_agree(tpch_db_tiny, query_number):
    """Each TPC-H-derived query returns identical results in the compiled
    engine (bytecode and optimized tiers), the adaptive mode and the Volcano
    baseline."""
    sql = TPCH_QUERIES[query_number]
    reference = None
    for mode in ("optimized", "bytecode", "adaptive", "volcano"):
        rows = normalized(tpch_db_tiny.execute(sql, mode=mode).rows)
        if reference is None:
            reference = rows
        else:
            assert rows == reference, f"mode {mode} differs on Q{query_number}"


@pytest.mark.parametrize("query_number", [1, 3, 5, 6, 10, 12, 14, 19, 22])
def test_tpch_vectorized_agrees(tpch_db_tiny, query_number):
    sql = TPCH_QUERIES[query_number]
    compiled = normalized(tpch_db_tiny.execute(sql, mode="optimized").rows)
    vectorized = normalized(tpch_db_tiny.execute(sql, mode="vectorized").rows)
    assert vectorized == compiled


def test_tpch_q1_produces_expected_groups(tpch_db):
    result = tpch_db.execute(TPCH_QUERIES[1], mode="optimized")
    flags = {row[0] for row in result.rows}
    assert flags <= {"A", "N", "R"}
    assert len(result.column_names) == 10
    # count per group is positive and sums to the filtered row count
    assert all(row[-1] > 0 for row in result.rows)


def test_tpch_q6_is_single_pipeline_scalar_aggregate(tpch_db):
    result = tpch_db.execute(TPCH_QUERIES[6], mode="optimized")
    assert len(result.rows) == 1
    # scan + hash-table-scan pipelines
    assert len(result.pipelines) == 2


class TestTPCDS:
    @pytest.fixture(scope="class")
    def tpcds_db(self):
        return populate_tpcds(fact_rows=1500)

    @pytest.mark.parametrize("query_id", sorted(TPCDS_QUERIES))
    def test_queries_run_and_agree(self, tpcds_db, query_id):
        sql = TPCDS_QUERIES[query_id]
        compiled = normalized(tpcds_db.execute(sql, mode="optimized").rows)
        interpreted = normalized(tpcds_db.execute(sql, mode="bytecode").rows)
        assert compiled == interpreted

    def test_query_sizes_span_a_range(self, tpcds_db):
        sizes = []
        for sql in TPCDS_QUERIES.values():
            generated, _, _ = tpcds_db.generate(sql)
            sizes.append(generated.instruction_count)
        assert max(sizes) > 4 * min(sizes)


class TestMetadataWorkload:
    @pytest.fixture(scope="class")
    def meta_db(self):
        return populate_metadata(num_tables=120)

    @pytest.mark.parametrize("index", range(len(METADATA_QUERIES)))
    def test_metadata_queries_agree(self, meta_db, index):
        sql = METADATA_QUERIES[index]
        compiled = normalized(meta_db.execute(sql, mode="optimized").rows)
        interpreted = normalized(meta_db.execute(sql, mode="bytecode").rows)
        adaptive = normalized(meta_db.execute(sql, mode="adaptive").rows)
        assert compiled == interpreted == adaptive

    def test_adaptive_never_compiles_tiny_queries(self, meta_db):
        """The paper's headline scenario: metadata queries stay interpreted."""
        for sql in METADATA_QUERIES:
            result = meta_db.execute(sql, mode="adaptive")
            for pipeline in result.pipelines:
                assert pipeline.mode_history == ["bytecode"]


class TestWideQueries:
    def test_query_text_scales(self):
        small = wide_aggregate_query(5)
        large = wide_aggregate_query(200)
        assert len(large) > 10 * len(small)

    def test_ir_size_scales_linearly(self):
        db = populate_wide_table(num_rows=50)
        sizes = {}
        for count in (10, 40, 160):
            generated, _, _ = db.generate(wide_aggregate_query(count))
            sizes[count] = generated.instruction_count
        assert sizes[40] > 2 * sizes[10]
        assert sizes[160] > 2 * sizes[40]

    def test_results_consistent_across_modes(self):
        db = populate_wide_table(num_rows=300)
        sql = wide_aggregate_query(25)
        compiled = normalized(db.execute(sql, mode="optimized").rows)
        interpreted = normalized(db.execute(sql, mode="bytecode").rows)
        assert compiled == interpreted

    def test_bytecode_translation_faster_than_optimized_compile(self):
        """Section V-E: translation must stay cheap for very large queries."""
        db = populate_wide_table(num_rows=10)
        sql = wide_aggregate_query(150)
        bytecode = db.execute(sql, mode="bytecode").timings.compile
        optimized = db.execute(sql, mode="optimized").timings.compile
        assert bytecode < optimized
