"""Concurrency stress tests: one shared database under contention.

Many client threads execute queries across execution modes (adaptive,
optimized, bytecode) -- through synchronous ``execute``, the async
``submit`` ticket API, and sessions -- while a writer thread keeps
inserting into one of the queried tables.  The assertions check the three
properties the scheduler subsystem must preserve under contention:

* every query returns the correct result (reads of the mutated table see a
  prefix-consistent, monotonically growing row count -- a stale plan-cache
  entry would violate monotonicity),
* the plan cache invalidates correctly while readers race the writer,
* the machine-wide thread count stays bounded by the shared pool (plus the
  compile thread), no matter how many queries are in flight.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro import Database, SQLType


CLIENTS = 4
RUNS_PER_CLIENT = 12
WRITER_BATCHES = 24
BATCH_ROWS = 10


@pytest.fixture()
def stress_db():
    db = Database(morsel_size=512, workers=4)
    db.create_table("items", [("id", SQLType.INT64),
                              ("category", SQLType.INT64),
                              ("price", SQLType.FLOAT64)])
    db.insert("items", [(i, i % 7, float(i) * 0.5) for i in range(8000)])
    db.create_table("events", [("seq", SQLType.INT64),
                               ("kind", SQLType.INT64)])
    yield db
    db.close()


ITEM_SQL = ("select category, sum(price) as total, count(*) as n "
            "from items group by category order by category")
EVENT_SQL = "select count(*) as c from events"
MODES = ("adaptive", "optimized", "bytecode")


def test_concurrent_stress_across_modes_with_interleaved_inserts(stress_db):
    db = stress_db
    expected_items = db.execute(ITEM_SQL, mode="optimized",
                                use_cache=False).rows
    start_threads = threading.active_count()
    errors: list[BaseException] = []
    peak_threads = [0]
    writer_done = threading.Event()

    def record_error(exc: BaseException) -> None:
        errors.append(exc)

    def writer() -> None:
        try:
            seq = 0
            for batch in range(WRITER_BATCHES):
                rows = [(seq + i, (seq + i) % 3) for i in range(BATCH_ROWS)]
                db.insert("events", rows)
                seq += BATCH_ROWS
                time.sleep(0.002)
        except BaseException as exc:  # pragma: no cover - diagnostic
            record_error(exc)
        finally:
            writer_done.set()

    def item_reader(client: int) -> None:
        # The items table is never mutated: every mode, every thread count,
        # and every cache state must agree with the reference result.
        try:
            for run in range(RUNS_PER_CLIENT):
                mode = MODES[(client + run) % len(MODES)]
                threads = 1 + (run % 2)
                result = db.execute(ITEM_SQL, mode=mode, threads=threads)
                assert result.rows == expected_items, (
                    f"client {client} run {run} mode {mode} diverged")
        except BaseException as exc:
            record_error(exc)

    def event_reader() -> None:
        # The events table grows concurrently: counts must be multiples of
        # the batch size (insert_rows is atomic per batch here) and must
        # never go backwards -- a stale cached plan would re-read an old
        # snapshot and break monotonicity.
        try:
            last = 0
            while not writer_done.is_set():
                for mode in MODES:
                    (count,), = db.execute(EVENT_SQL, mode=mode).rows
                    assert count % BATCH_ROWS == 0, count
                    assert count >= last, (count, last)
                    last = count
        except BaseException as exc:
            record_error(exc)

    def ticket_client() -> None:
        # Async submissions race the same plan-cache entries.
        try:
            session = db.session(mode="optimized", name="ticket-client")
            for _ in range(RUNS_PER_CLIENT):
                ticket = session.submit(ITEM_SQL)
                assert ticket.result(timeout=60).rows == expected_items
            stats = session.stats
            assert stats.completed == RUNS_PER_CLIENT
            assert stats.failed == 0
        except BaseException as exc:
            record_error(exc)

    def monitor() -> None:
        while not writer_done.is_set():
            peak_threads[0] = max(peak_threads[0], threading.active_count())
            time.sleep(0.003)

    clients = ([threading.Thread(target=item_reader, args=(i,))
                for i in range(CLIENTS)]
               + [threading.Thread(target=event_reader),
                  threading.Thread(target=ticket_client),
                  threading.Thread(target=writer),
                  threading.Thread(target=monitor)])
    for thread in clients:
        thread.start()
    for thread in clients:
        thread.join(timeout=120)
        assert not thread.is_alive(), "stress client hung"

    assert not errors, errors[:3]

    # Final state: all writer batches are visible to a fresh query in every
    # mode -- the plan cache cannot have survived the last invalidation.
    total = WRITER_BATCHES * BATCH_ROWS
    for mode in MODES:
        assert db.execute(EVENT_SQL, mode=mode).rows == [(total,)]

    # Thread boundedness: the client threads above are ours; beyond those,
    # only the shared pool (4 workers) and the compile thread may appear.
    own = len(clients)
    assert peak_threads[0] <= start_threads + own + 4 + 1


def test_submit_saturation_returns_correct_results(stress_db):
    db = stress_db
    expected = db.execute(ITEM_SQL, use_cache=False).rows
    tickets = [db.submit(ITEM_SQL, mode=MODES[i % len(MODES)])
               for i in range(16)]
    for ticket in tickets:
        assert ticket.result(timeout=120).rows == expected
    stats = db.scheduler.stats
    assert stats.completed >= 16
    assert stats.peak_running <= db.scheduler.max_concurrent


def test_vectorized_scans_race_concurrent_inserts():
    """Regression for the ragged-array race: a vectorized scan gathering
    numpy columns while pool workers append must never observe different
    lengths for different columns of the same table (the symptom was a
    numpy broadcast error or a torn row).  Pruned and unpruned scans both
    run against the moving table and must stay internally consistent."""
    db = Database(morsel_size=256, workers=4)
    db.catalog.create_table("ledger", [("seq", SQLType.INT64),
                                       ("amount", SQLType.FLOAT64),
                                       ("tag", SQLType.STRING)],
                            chunk_rows=512)
    db.insert("ledger", [(i, float(i), f"t{i % 5}") for i in range(4000)])

    errors: list[BaseException] = []
    stop = threading.Event()

    def writer() -> None:
        try:
            base = 4000
            for batch in range(60):
                db.insert("ledger",
                          [(base + batch * 25 + j, 1.0, "w")
                           for j in range(25)])
        except BaseException as exc:  # pragma: no cover - failure path
            errors.append(exc)
        finally:
            stop.set()

    def scanner(use_pruning: bool) -> None:
        from repro.options import ExecOptions
        options = ExecOptions(mode="vectorized", use_pruning=use_pruning)
        try:
            while not stop.is_set():
                # A full aggregation touches every column: lengths must
                # agree or numpy raises / rows tear.
                result = db.execute(
                    "select count(*) as n, sum(amount) as s from ledger "
                    "where seq >= 0",
                    options=options, use_cache=False)
                (n, s) = result.rows[0]
                assert n >= 4000
                # Selective scan over the clustered column.
                selective = db.execute(
                    "select count(*) as n from ledger "
                    "where seq between 1024 and 1535",
                    options=options, use_cache=False)
                assert selective.rows == [(512,)]
        except BaseException as exc:  # pragma: no cover - failure path
            errors.append(exc)

    threads = [threading.Thread(target=writer),
               threading.Thread(target=scanner, args=(True,)),
               threading.Thread(target=scanner, args=(False,))]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=120)
        assert not thread.is_alive(), "race test hung"
    assert not errors, errors[:3]

    final = db.execute("select count(*) from ledger", use_cache=False)
    assert final.rows == [(4000 + 60 * 25,)]
    db.close()


def test_concurrent_partitioned_aggregations_share_pool():
    """Many aggregating queries at once, all drawing morsel workers *and*
    per-partition merge tasks from one shared pool.

    Every execution accumulates into per-worker-slot partials (no shared
    lock on the aggregation hot path -- asserted via the fallback-lock
    counter), merges on the pool, and must return the exact single-threaded
    result; the unpartitioned escape hatch runs interleaved to prove both
    layouts coexist on one cached plan.
    """
    from repro.options import ExecOptions

    db = Database(morsel_size=256, workers=4)
    db.create_table("sales", [("region", SQLType.INT64),
                              ("item", SQLType.INT64),
                              ("amount", SQLType.FLOAT64)])
    db.insert("sales", [(i % 5, i % 11, float(i % 97))
                        for i in range(12000)])
    sql = ("select region, count(*), sum(amount), min(amount), max(amount) "
           "from sales group by region")
    expected = db.execute(sql, mode="optimized", threads=1,
                          use_cache=False).rows
    assert expected == sorted(expected)  # deterministic finalize order

    errors: list[BaseException] = []

    def client(index: int) -> None:
        try:
            for run in range(6):
                if (index + run) % 3 == 0:
                    options = ExecOptions(mode="adaptive", threads=4)
                elif (index + run) % 3 == 1:
                    options = ExecOptions(mode="bytecode", threads=4,
                                          breaker_partitions=2)
                else:
                    options = ExecOptions(mode="optimized", threads=4,
                                          use_partitioned_breakers=False)
                result = db.execute(sql, options=options)
                assert result.rows == expected, options
                if options.use_partitioned_breakers:
                    assert result.stats["breaker_lock_acquisitions"] == 0
                ticket = db.submit(sql, options=options)
                assert ticket.result().rows == expected
        except BaseException as exc:  # pragma: no cover - failure path
            errors.append(exc)

    threads = [threading.Thread(target=client, args=(i,)) for i in range(6)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=120)
        assert not thread.is_alive(), "aggregation stress hung"
    assert not errors, errors[:3]
    db.close()
