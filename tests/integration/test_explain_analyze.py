"""EXPLAIN / EXPLAIN ANALYZE equivalence across all execution modes.

EXPLAIN ANALYZE actually runs the statement, so its annotated plan must
agree with the plain execution's result in every mode: identical output
cardinality, one annotation per executed pipeline, real (non-negative)
timings.  A representative TPC-H sample exercises multi-pipeline plans
(joins + aggregation + top-k).
"""

from __future__ import annotations

import pytest

from repro import BASELINE_MODES, ENGINE_MODES
from repro.workloads import TPCH_QUERIES

ALL_MODES = list(ENGINE_MODES) + list(BASELINE_MODES)

#: Queries with scans, joins, aggregation, ORDER BY + LIMIT.
SAMPLE_QUERIES = [1, 3, 6, 11]


class TestExplainAnalyzeEquivalence:
    @pytest.mark.parametrize("mode", ALL_MODES)
    def test_row_counts_match_plain_execution(self, tpch_db_tiny, mode):
        for query_id in SAMPLE_QUERIES:
            sql = TPCH_QUERIES[query_id]
            plain = tpch_db_tiny.execute(sql, mode=mode)
            analyzed = tpch_db_tiny.execute(f"EXPLAIN ANALYZE {sql}",
                                            mode=mode)
            explain = analyzed.explain
            assert explain is not None, (mode, query_id)
            assert explain.analyzed
            assert explain.mode == mode
            assert explain.output_rows == len(plain.rows), (mode, query_id)
            # One annotation per executed pipeline, all with real stats.
            assert len(explain.pipelines) == len(analyzed.pipelines)
            for annotation in explain.pipelines:
                assert annotation.description, (mode, query_id)
                assert annotation.seconds >= 0.0
                assert annotation.rows_in >= 0

    @pytest.mark.parametrize("mode", ALL_MODES)
    def test_explain_without_analyze_does_not_execute(self, tpch_db_tiny,
                                                      mode):
        sql = TPCH_QUERIES[6]
        before = tpch_db_tiny.metrics.get("query.count").value
        result = tpch_db_tiny.execute(f"EXPLAIN {sql}", mode=mode)
        explain = result.explain
        assert not explain.analyzed
        assert explain.pipelines  # plan annotations with estimates only
        assert all(a.rows_out is None for a in explain.pipelines)
        # Plain EXPLAIN never runs the query (the recorder saw nothing).
        assert tpch_db_tiny.metrics.get("query.count").value == before

    def test_analyze_text_output_shape(self, tpch_db_tiny):
        sql = TPCH_QUERIES[3]
        result = tpch_db_tiny.execute(f"explain analyze {sql}")
        assert result.column_names == ["plan"]
        text = "\n".join(row[0] for row in result.rows)
        assert "EXPLAIN ANALYZE" in text
        assert "rows=" in text

    def test_structured_explain_api(self, tpch_db_tiny):
        explain = tpch_db_tiny.explain(TPCH_QUERIES[6], analyze=True,
                                       mode="optimized")
        assert explain.analyzed
        data = explain.to_dict()
        assert data["mode"] == "optimized"
        assert data["pipelines"]

    def test_analyze_row_results_match_via_submit(self, tpch_db_tiny):
        """EXPLAIN ANALYZE routes transparently through the scheduler."""
        sql = TPCH_QUERIES[6]
        ticket = tpch_db_tiny.submit(f"EXPLAIN ANALYZE {sql}",
                                     mode="bytecode")
        result = ticket.result(timeout=120)
        plain = tpch_db_tiny.execute(sql, mode="bytecode")
        assert result.explain.output_rows == len(plain.rows)
