"""Shared fixtures for the test suite."""

from __future__ import annotations

import faulthandler
import os
import sys

import pytest

# Allow running the tests without installing the package.
_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
                    "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

# Pass-pipeline validation stays on for the whole suite: every optimization
# pass is re-verified and every bytecode translation is checked, so a bad
# rewrite fails the test that compiled it, at the pass that broke it.
# Explicit ExecOptions(verify_ir=...) and pre-set environments still win.
os.environ.setdefault("REPRO_VERIFY_IR", "1")

# ---------------------------------------------------------------------- #
# Per-test timeout: a deadlock in the concurrent scheduler must fail the
# run, not hang it.  CI installs pytest-timeout and passes --timeout; when
# the plugin is absent (plain local runs) fall back to faulthandler's
# watchdog, which dumps every thread's stack and aborts the process once a
# single test exceeds REPRO_TEST_TIMEOUT seconds.
# ---------------------------------------------------------------------- #
try:
    import pytest_timeout  # noqa: F401
    _HAVE_PYTEST_TIMEOUT = True
except ImportError:
    _HAVE_PYTEST_TIMEOUT = False

_FALLBACK_TIMEOUT = float(os.environ.get("REPRO_TEST_TIMEOUT", "300"))

if not _HAVE_PYTEST_TIMEOUT and hasattr(faulthandler,
                                        "dump_traceback_later"):
    @pytest.hookimpl(hookwrapper=True)
    def pytest_runtest_protocol(item, nextitem):
        faulthandler.dump_traceback_later(_FALLBACK_TIMEOUT, exit=True)
        try:
            yield
        finally:
            faulthandler.cancel_dump_traceback_later()

from repro import Database, SQLType               # noqa: E402
from repro.workloads import populate_tpch          # noqa: E402


@pytest.fixture()
def empty_db() -> Database:
    """A fresh, empty database."""
    return Database()


@pytest.fixture()
def simple_db() -> Database:
    """A small two-table database used by many unit tests."""
    db = Database()
    db.create_table("items", [("id", SQLType.INT64),
                              ("category", SQLType.INT64),
                              ("price", SQLType.FLOAT64),
                              ("name", SQLType.STRING)])
    db.create_table("categories", [("cat_id", SQLType.INT64),
                                   ("cat_name", SQLType.STRING)])
    db.insert("categories", [(i, f"cat-{i}") for i in range(5)])
    db.insert("items", [(i, i % 5, float(i) * 1.5, f"item-{i}")
                        for i in range(100)])
    return db


@pytest.fixture(scope="session")
def tpch_db() -> Database:
    """A small TPC-H database shared by integration tests (read only)."""
    return populate_tpch(scale_factor=0.03, seed=7)


@pytest.fixture(scope="session")
def tpch_db_tiny() -> Database:
    """An even smaller TPC-H instance for expensive cross-mode comparisons."""
    return populate_tpch(scale_factor=0.01, seed=13)


def normalized(rows, digits: int = 4):
    """Round floats so results can be compared across execution engines."""
    out = []
    for row in rows:
        out.append(tuple(round(value, digits) if isinstance(value, float)
                         else value for value in row))
    return out
