"""Property tests for the top-k output breaker and LIMIT early termination.

The load-bearing invariant: running ORDER BY + LIMIT k through the bounded
per-worker heaps must return *exactly* the rows of the sort-then-slice
finish (``use_topk_breaker=False``), for every execution mode, any worker
and partition count, and adversarial orderings -- heavy duplicate sort
keys, DESC keys, NaN keys, k of 0, k larger than the input.  Ordering ties
are broken by the canonical whole-row comparison in every engine, so the
comparisons below are exact row-list equality, not set equality.
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import BASELINE_MODES, ENGINE_MODES, Database, SQLType
from repro.options import ExecOptions

ALL_MODES = list(ENGINE_MODES) + list(BASELINE_MODES)

_SETTINGS = settings(max_examples=15, deadline=None,
                     suppress_health_check=[HealthCheck.too_slow,
                                            HealthCheck.function_scoped_fixture])

#: Tiny key domain: most examples have duplicate sort keys, which is where
#: a non-canonical tiebreak would diverge between the heap and the sort.
_dup_key = st.integers(0, 4)
_row = st.tuples(_dup_key, st.integers(-100, 100))


def _configs(mode):
    configs = [
        ExecOptions(mode=mode),
        ExecOptions(mode=mode, use_topk_breaker=False),   # sort-then-slice
        ExecOptions(mode=mode, breaker_partitions=32),
    ]
    if mode in ENGINE_MODES:
        configs.append(ExecOptions(mode=mode, threads=4))
        configs.append(ExecOptions(mode=mode, threads=4,
                                   use_topk_breaker=False))
    return configs


@_SETTINGS
@given(rows=st.lists(_row, min_size=0, max_size=120),
       limit=st.integers(0, 15))
def test_topk_matches_sort_then_slice(rows, limit):
    """Top-k == sorted()[:k] for ascending keys with heavy duplicates.

    With output columns (k, v) and ORDER BY k, the canonical full-row
    tiebreak makes the expected result simply ``sorted(rows)[:limit]``.
    """
    db = Database(morsel_size=32, workers=4)
    try:
        db.create_table("t", [("k", SQLType.INT64), ("v", SQLType.INT64)])
        if rows:
            db.insert("t", rows)
        expected = sorted(rows)[:limit]
        sql = f"select k, v from t order by k limit {limit}"
        for mode in ALL_MODES:
            for options in _configs(mode):
                result = db.execute(sql, options=options)
                assert result.rows == expected, (mode, options)
    finally:
        db.close()


@_SETTINGS
@given(rows=st.lists(_row, min_size=0, max_size=120),
       limit=st.integers(0, 15))
def test_topk_desc_matches_sort_then_slice(rows, limit):
    """DESC keys flow through the inverted heap comparison correctly."""
    db = Database(morsel_size=32, workers=4)
    try:
        db.create_table("t", [("k", SQLType.INT64), ("v", SQLType.INT64)])
        if rows:
            db.insert("t", rows)
        # ORDER BY k DESC, v: fully determined, so plain Python sort works.
        expected = sorted(rows, key=lambda r: (-r[0], r[1]))[:limit]
        sql = f"select k, v from t order by k desc, v limit {limit}"
        for mode in ALL_MODES:
            for options in _configs(mode):
                result = db.execute(sql, options=options)
                assert result.rows == expected, (mode, options)
    finally:
        db.close()


@_SETTINGS
@given(values=st.lists(
    st.one_of(st.just(float("nan")),
              st.floats(-1e6, 1e6, allow_nan=False, allow_infinity=False)),
    min_size=0, max_size=60),
    limit=st.integers(0, 10))
def test_topk_with_nan_sort_keys(values, limit):
    """NaN sort keys order canonically (after every number), identically in
    the heap, the sort-then-slice finish, and every engine."""
    db = Database(morsel_size=16, workers=4)
    try:
        db.create_table("t", [("f", SQLType.FLOAT64), ("i", SQLType.INT64)])
        rows = [(value, index) for index, value in enumerate(values)]
        if rows:
            db.insert("t", rows, encode=False)
        sql = f"select i, f from t order by f limit {limit}"
        reference = None
        for mode in ALL_MODES:
            for options in _configs(mode):
                result = db.execute(sql, options=options)
                got = result.rows
                assert len(got) == min(limit, len(rows)), (mode, options)
                # NaN != NaN breaks plain tuple comparison; compare via repr.
                key = [(i, "nan" if f != f else f) for i, f in got]
                if reference is None:
                    reference = key
                assert key == reference, (mode, options)
        if reference:
            numbers = [f for _, f in reference if f != "nan"]
            assert numbers == sorted(numbers)
            # NaNs sort after every number.
            first_nan = next((pos for pos, (_, f) in enumerate(reference)
                              if f == "nan"), None)
            if first_nan is not None:
                assert all(f == "nan" for _, f in reference[first_nan:])
    finally:
        db.close()


@_SETTINGS
@given(rows=st.lists(_row, min_size=1, max_size=200),
       limit=st.integers(0, 12))
def test_limit_without_order_by_returns_any_k_rows(rows, limit):
    """LIMIT without ORDER BY early-terminates with exactly min(k, n) rows,
    every one of them an actual table row."""
    db = Database(morsel_size=16, workers=4)
    try:
        db.create_table("t", [("k", SQLType.INT64), ("v", SQLType.INT64)])
        db.insert("t", rows)
        table = set(rows)
        sql = f"select k, v from t limit {limit}"
        for mode in ALL_MODES:
            for options in _configs(mode):
                result = db.execute(sql, options=options)
                assert len(result.rows) == min(limit, len(rows)), \
                    (mode, options)
                assert set(result.rows) <= table, (mode, options)
    finally:
        db.close()


def test_limit_parameter_reuses_one_prepared_plan():
    """``LIMIT ?`` binds per execution: one prepared statement serves every
    k, in every mode, with and without the breaker."""
    db = Database(morsel_size=32, workers=4)
    try:
        db.create_table("t", [("k", SQLType.INT64), ("v", SQLType.INT64)])
        db.insert("t", [(i % 5, i) for i in range(200)])
        sql = "select k, v from t order by k, v limit ?"
        prepared = db.prepare_query(sql)
        expected_all = sorted((i % 5, i) for i in range(200))
        for k in (0, 1, 7, 200, 1000):
            expected = expected_all[:k]
            for mode in ENGINE_MODES:
                assert prepared.execute(mode=mode, params=[k]).rows \
                    == expected, (mode, k)
                assert prepared.execute(
                    mode=mode, params=[k],
                    options=ExecOptions(mode=mode, threads=4)).rows \
                    == expected, (mode, k)
            for mode in BASELINE_MODES:
                assert db.execute(sql, mode=mode, params=[k]).rows \
                    == expected, (mode, k)
        assert prepared.executions >= 10  # one plan, many limits
    finally:
        db.close()


def test_limit_early_termination_is_reported():
    """A LIMIT that stops the scan early surfaces in the result stats; the
    breaker paths stay lock-free and the heap stays bounded."""
    db = Database(morsel_size=64, workers=4)
    try:
        db.create_table("t", [("k", SQLType.INT64), ("v", SQLType.INT64)])
        db.insert("t", [(i, i) for i in range(5000)])
        for mode in ALL_MODES:
            result = db.execute("select v from t limit 10", mode=mode)
            assert len(result.rows) == 10
            assert result.stats["limit_early_terminated"], mode
            full = db.execute("select v from t order by v limit 10",
                              mode=mode)
            assert full.rows == [(i,) for i in range(10)], mode
            # Top-k never materialises the full input and never locks.
            assert full.stats["breaker_lock_acquisitions"] == 0, mode
    finally:
        db.close()
