"""Property tests for LEFT OUTER JOIN as a first-class partitioned breaker.

The defining invariant, checked against a reference computed in plain
Python: a LEFT JOIN returns every inner-join row *plus* exactly one
NULL-padded row per probe row no build match survived for -- in every
execution mode, for any worker and partition count, with residual ON
conditions, duplicate keys, all-matched and all-unmatched build sides.
The binder keeps NULL-padded columns away from every breaker input
(WHERE, GROUP BY, aggregates, other joins), which preserves the engine's
NULL-free breaker invariant.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import BASELINE_MODES, ENGINE_MODES, Database, SQLType
from repro.errors import ReproError
from repro.options import ExecOptions

ALL_MODES = list(ENGINE_MODES) + list(BASELINE_MODES)

_SETTINGS = settings(max_examples=15, deadline=None,
                     suppress_health_check=[HealthCheck.too_slow,
                                            HealthCheck.function_scoped_fixture])

#: Tiny key domain: duplicates on both sides (one-to-many fan-out) and
#: guaranteed unmatched probe rows.
_key = st.integers(0, 5)
_probe_row = st.tuples(_key, st.integers(-50, 50))
_build_row = st.tuples(_key, st.integers(-50, 50))


def _configs(mode):
    configs = [
        ExecOptions(mode=mode),
        ExecOptions(mode=mode, breaker_partitions=1),
        ExecOptions(mode=mode, breaker_partitions=32),
        ExecOptions(mode=mode, use_partitioned_breakers=False),
    ]
    if mode in ENGINE_MODES:
        configs.append(ExecOptions(mode=mode, threads=4))
    return configs


def _canonical(row):
    """Mirror the engines' canonical ordering: NULL after every value."""
    return tuple((1, 0) if value is None else (0, value) for value in row)


def _expected_left_join(probe, build, residual=None):
    """Reference LEFT JOIN, ordered by the leading probe key with the
    engines' canonical whole-row tiebreak."""
    rows = []
    for key, value in probe:
        matched = False
        for bkey, weight in build:
            if bkey == key and (residual is None or residual(weight)):
                matched = True
                rows.append((key, value, weight))
        if not matched:
            rows.append((key, value, None))
    return sorted(rows, key=_canonical)


@_SETTINGS
@given(probe=st.lists(_probe_row, min_size=0, max_size=60),
       build=st.lists(_build_row, min_size=0, max_size=40))
def test_left_join_equals_inner_plus_unmatched(probe, build):
    db = Database(morsel_size=16, workers=4)
    try:
        db.create_table("t", [("k", SQLType.INT64), ("v", SQLType.INT64)])
        db.create_table("s", [("k", SQLType.INT64), ("w", SQLType.INT64)])
        if probe:
            db.insert("t", probe)
        if build:
            db.insert("s", build)
        expected = _expected_left_join(probe, build)
        sql = ("select t.k, t.v, s.w from t left join s on t.k = s.k "
               "order by t.k")
        for mode in ALL_MODES:
            for options in _configs(mode):
                result = db.execute(sql, options=options)
                assert result.rows == expected, (mode, options)
    finally:
        db.close()


@_SETTINGS
@given(probe=st.lists(_probe_row, min_size=0, max_size=60),
       build=st.lists(_build_row, min_size=0, max_size=40),
       threshold=st.integers(-50, 50))
def test_left_join_with_residual_on_condition(probe, build, threshold):
    """Residual ON conjuncts must run *inside* the probe (a failed residual
    preserves the probe row) -- a post-join filter would drop it."""
    db = Database(morsel_size=16, workers=4)
    try:
        db.create_table("t", [("k", SQLType.INT64), ("v", SQLType.INT64)])
        db.create_table("s", [("k", SQLType.INT64), ("w", SQLType.INT64)])
        if probe:
            db.insert("t", probe)
        if build:
            db.insert("s", build)
        expected = _expected_left_join(
            probe, build, residual=lambda w: w > threshold)
        sql = (f"select t.k, t.v, s.w from t left join s "
               f"on t.k = s.k and s.w > {threshold} order by t.k")
        for mode in ALL_MODES:
            for options in _configs(mode):
                result = db.execute(sql, options=options)
                assert result.rows == expected, (mode, options)
    finally:
        db.close()


def test_all_matched_and_all_unmatched_build_sides():
    """The complement degenerates correctly at both extremes."""
    db = Database(morsel_size=8, workers=4)
    try:
        db.create_table("t", [("k", SQLType.INT64), ("v", SQLType.INT64)])
        db.create_table("full_s", [("k", SQLType.INT64),
                                   ("w", SQLType.INT64)])
        db.create_table("empty_s", [("k", SQLType.INT64),
                                    ("w", SQLType.INT64)])
        probe = [(i % 4, i) for i in range(40)]
        db.insert("t", probe)
        db.insert("full_s", [(k, k * 10) for k in range(4)])  # every key hits

        inner = ("select t.k, t.v, full_s.w from t "
                 "join full_s on t.k = full_s.k order by t.k, t.v")
        left_full = ("select t.k, t.v, full_s.w from t "
                     "left join full_s on t.k = full_s.k order by t.k, t.v")
        left_empty = ("select t.k, t.v, empty_s.w from t "
                      "left join empty_s on t.k = empty_s.k "
                      "order by t.k, t.v")
        for mode in ALL_MODES:
            # All matched: LEFT JOIN collapses to the inner join.
            assert db.execute(left_full, mode=mode).rows == \
                db.execute(inner, mode=mode).rows, mode
            # All unmatched: every probe row survives once, NULL-padded.
            rows = db.execute(left_empty, mode=mode).rows
            assert rows == [(k, v, None) for k, v in sorted(probe)], mode
    finally:
        db.close()


def test_left_join_composes_with_topk_and_aggregation_siblings():
    """LEFT JOIN output runs through ORDER BY + LIMIT top-k heaps, and its
    NULL-padded columns order canonically (NULL last) in every mode."""
    db = Database(morsel_size=16, workers=4)
    try:
        db.create_table("t", [("k", SQLType.INT64), ("v", SQLType.INT64)])
        db.create_table("s", [("k", SQLType.INT64), ("w", SQLType.INT64)])
        db.insert("t", [(i % 10, i) for i in range(100)])
        db.insert("s", [(k, k * 100) for k in range(0, 10, 2)])
        sql = ("select t.v, s.w from t left join s on t.k = s.k "
               "order by s.w desc, t.v limit 7")
        reference = None
        for mode in ALL_MODES:
            for options in (ExecOptions(mode=mode),
                            ExecOptions(mode=mode, use_topk_breaker=False)):
                rows = db.execute(sql, options=options).rows
                if reference is None:
                    reference = rows
                assert rows == reference, (mode, options)
        assert len(reference) == 7
        # NULL orders as the largest value, so DESC puts the NULL-padded
        # rows first (NULLS FIRST), tiebroken by ascending t.v: the seven
        # smallest v with odd (unmatched) keys.
        assert reference == [(v, None) for v in (1, 3, 5, 7, 9, 11, 13)]
    finally:
        db.close()


def test_right_and_full_joins_rejected_with_precise_errors():
    db = Database()
    try:
        db.create_table("t", [("k", SQLType.INT64)])
        db.create_table("s", [("k", SQLType.INT64)])
        with pytest.raises(ReproError) as excinfo:
            db.execute("select t.k from t right join s on t.k = s.k")
        message = str(excinfo.value)
        assert "RIGHT OUTER JOIN" in message
        assert "line 1" in message
        assert "swapping its inputs" in message
        with pytest.raises(ReproError) as excinfo:
            db.execute("select t.k from t full outer join s on t.k = s.k")
        assert "FULL OUTER JOIN" in str(excinfo.value)
    finally:
        db.close()


def test_nullable_columns_cannot_reach_breakers():
    """NULL-padded build columns are rejected everywhere a NULL could enter
    a breaker: WHERE, GROUP BY, aggregates, expressions.  Bare references
    in SELECT and ORDER BY remain allowed."""
    db = Database()
    try:
        db.create_table("t", [("k", SQLType.INT64), ("v", SQLType.INT64)])
        db.create_table("s", [("k", SQLType.INT64), ("w", SQLType.INT64)])
        db.insert("t", [(1, 10), (2, 20)])
        db.insert("s", [(1, 100)])
        ok = db.execute("select t.v, s.w from t left join s on t.k = s.k "
                        "order by s.w")
        assert ok.rows == [(10, 100), (20, None)]
        rejected = [
            "select t.v from t left join s on t.k = s.k where s.w > 0",
            "select s.w, count(*) from t left join s on t.k = s.k "
            "group by s.w",
            "select sum(s.w) from t left join s on t.k = s.k",
            "select s.w + 1 from t left join s on t.k = s.k",
        ]
        for sql in rejected:
            with pytest.raises(ReproError, match="can be NULL"):
                db.execute(sql)
    finally:
        db.close()
