"""Property tests for zone-map scan pruning.

The load-bearing invariant: pruning may only skip chunks that provably
contain no qualifying row, so a pruned scan must return *exactly* the rows
of an unpruned scan -- for every execution mode, every predicate shape, and
every re-binding of a cached parameterized plan.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import BASELINE_MODES, ENGINE_MODES, Database, SQLType
from repro.options import ExecOptions

ALL_MODES = list(ENGINE_MODES) + list(BASELINE_MODES)

_SETTINGS = settings(max_examples=25, deadline=None,
                     suppress_health_check=[HealthCheck.too_slow,
                                            HealthCheck.function_scoped_fixture])


def normalized(rows):
    return sorted(tuple(round(v, 6) if isinstance(v, float) else v
                        for v in row) for row in rows)


def build_db(values, chunk_rows=16):
    db = Database(morsel_size=64)
    db.catalog.create_table("t", [("a", SQLType.INT64),
                                  ("f", SQLType.FLOAT64)],
                            chunk_rows=chunk_rows)
    if values:
        db.insert("t", [(v, v * 0.5) for v in values])
    return db


predicate_strategy = st.sampled_from([
    "a = {0}",
    "a < {0}",
    "a <= {0}",
    "a > {0}",
    "a >= {0}",
    "a <> {0}",
    "a between {0} and {1}",
    "a not between {0} and {1}",
    "a in ({0}, {1}, {2})",
    "a not in ({0}, {1})",
    "f > {0}",
    "a >= {0} and a <= {1}",
])


@_SETTINGS
@given(values=st.lists(st.integers(min_value=-500, max_value=500),
                       min_size=0, max_size=400),
       template=predicate_strategy,
       constants=st.tuples(st.integers(min_value=-500, max_value=500),
                           st.integers(min_value=-500, max_value=500),
                           st.integers(min_value=-500, max_value=500)))
def test_pruned_equals_unpruned_in_every_mode(values, template, constants):
    db = build_db(values)
    sql = ("select a, f from t where "
           + template.format(*constants))
    expected = None
    for mode in ALL_MODES:
        pruned = db.execute(sql, mode=mode)
        unpruned = db.execute(
            sql, options=ExecOptions(mode=mode, use_pruning=False))
        assert unpruned.stats["chunks_pruned"] == 0
        left = normalized(pruned.rows)
        right = normalized(unpruned.rows)
        assert left == right, (mode, template, constants)
        if expected is None:
            expected = left
        assert left == expected, (mode, template, constants)


@_SETTINGS
@given(values=st.lists(st.integers(min_value=0, max_value=1000),
                       min_size=1, max_size=300),
       bindings=st.lists(
           st.tuples(st.integers(min_value=0, max_value=1000),
                     st.integers(min_value=0, max_value=1000)),
           min_size=1, max_size=5))
def test_cached_plan_prunes_correctly_for_every_binding(values, bindings):
    """One cached parameterized plan, many bindings: each execution must
    re-evaluate the zone maps against *its* parameter values."""
    db = build_db(values)
    prepared = db.prepare_query(
        "select a from t where a between ? and ?")
    for low, high in bindings:
        result = prepared.execute(mode="bytecode", params=[low, high])
        oracle = sorted((v,) for v in values if low <= v <= high)
        assert sorted(result.rows) == oracle, (low, high)
        unpruned = prepared.execute(
            mode="bytecode",
            options=ExecOptions(mode="bytecode", use_pruning=False),
            params=[low, high])
        assert sorted(unpruned.rows) == oracle


@_SETTINGS
@given(values=st.lists(st.integers(min_value=-100, max_value=100),
                       min_size=0, max_size=200),
       constant=st.integers(min_value=-100, max_value=100))
def test_pruning_matches_python_oracle(values, constant):
    db = build_db(values, chunk_rows=8)
    result = db.execute(f"select a from t where a >= {constant}")
    assert sorted(result.rows) == sorted(
        (v,) for v in values if v >= constant)
