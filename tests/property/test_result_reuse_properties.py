"""Property tests for the semantic result cache and execute_many.

The load-bearing invariants:

* **Equivalence** -- for every execution mode, ``execute_many`` over a
  batch of bindings returns exactly what per-binding ``execute`` with the
  result cache disabled returns, regardless of how much of the batch was
  fused, deduplicated or served from cache.
* **No stale reads** -- a cached result may never survive a mutation of
  any referenced table: under arbitrarily interleaved inserts and DDL,
  every read matches a Python oracle over the table's current contents.
* **Concurrency safety** -- concurrent submits of one hot shape through
  the scheduler produce only correct results while the cache fills and
  serves underneath them.
"""

from __future__ import annotations

import threading

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import BASELINE_MODES, ENGINE_MODES, Database, SQLType
from repro.options import ExecOptions

ALL_MODES = list(ENGINE_MODES) + list(BASELINE_MODES)

_SETTINGS = settings(max_examples=25, deadline=None,
                     suppress_health_check=[HealthCheck.too_slow,
                                            HealthCheck.function_scoped_fixture])


def normalized(rows):
    return sorted(tuple(round(v, 6) if isinstance(v, float) else v
                        for v in row) for row in rows)


def build_db(values):
    db = Database(morsel_size=64)
    db.create_table("t", [("a", SQLType.INT64), ("f", SQLType.FLOAT64)])
    if values:
        db.insert("t", [(v, v * 0.5) for v in values])
    return db


@_SETTINGS
@given(values=st.lists(st.integers(min_value=-50, max_value=50),
                       min_size=1, max_size=150),
       bindings=st.lists(st.integers(min_value=-50, max_value=50),
                         min_size=1, max_size=6))
def test_execute_many_equals_uncached_execute_in_every_mode(values,
                                                            bindings):
    db = build_db(values)
    sql = "select count(*) as n, sum(a) as s from t where a >= ?"
    batch = [(b,) for b in bindings]
    for mode in ALL_MODES:
        expected = [normalized(db.execute(
            sql, params=binding,
            options=ExecOptions(mode=mode, use_result_cache=False)).rows)
            for binding in batch]
        fused = db.execute_many(sql, batch, mode=mode)
        assert [normalized(r.rows) for r in fused] == expected, mode
        # And again, now that every binding is cache-resident.
        repeat = db.execute_many(sql, batch, mode=mode)
        assert [normalized(r.rows) for r in repeat] == expected, mode


@_SETTINGS
@given(initial=st.lists(st.integers(min_value=0, max_value=40),
                        min_size=1, max_size=60),
       steps=st.lists(
           st.one_of(
               st.tuples(st.just("read"),
                         st.integers(min_value=0, max_value=40)),
               st.tuples(st.just("insert"),
                         st.integers(min_value=0, max_value=40)),
               st.tuples(st.just("recreate"),
                         st.integers(min_value=0, max_value=40))),
           min_size=1, max_size=12))
def test_no_stale_reads_under_interleaved_mutations(initial, steps):
    """Every read agrees with a Python oracle over the *current* rows."""
    db = build_db(initial)
    oracle = list(initial)
    sql = "select count(*) as n from t where a >= ?"
    for action, value in steps:
        if action == "insert":
            db.insert("t", [(value, value * 0.5)])
            oracle.append(value)
        elif action == "recreate":
            db.drop_table("t")
            db.create_table("t", [("a", SQLType.INT64),
                                  ("f", SQLType.FLOAT64)])
            db.insert("t", [(value, value * 0.5)])
            oracle = [value]
        result = db.execute(sql, params=(value,))
        expected = sum(1 for v in oracle if v >= value)
        assert result.rows == [(expected,)], (action, value)


@_SETTINGS
@given(values=st.lists(st.integers(min_value=0, max_value=30),
                       min_size=1, max_size=80),
       bindings=st.lists(st.integers(min_value=0, max_value=30),
                         min_size=2, max_size=4))
def test_concurrent_submits_of_one_hot_shape(values, bindings):
    db = build_db(values)
    sql = "select count(*) as n from t where a >= ?"
    expected = {b: sum(1 for v in values if v >= b) for b in bindings}
    errors = []
    barrier = threading.Barrier(len(bindings))

    def worker(binding):
        try:
            barrier.wait(timeout=30)
            for _ in range(3):
                ticket = db.submit(sql, params=(binding,))
                result = ticket.result(timeout=60)
                if result.rows != [(expected[binding],)]:
                    errors.append((binding, result.rows))
        except Exception as exc:  # pragma: no cover - failure reporting
            errors.append((binding, repr(exc)))

    threads = [threading.Thread(target=worker, args=(b,)) for b in bindings]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=120)
    db.close()
    assert errors == []
