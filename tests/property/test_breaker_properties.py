"""Property tests for partition-parallel pipeline breakers.

The load-bearing invariant: hash-partitioning the breaker state and merging
per-worker partials is pure bookkeeping -- a partitioned execution must
return *exactly* the rows of the single-table path, for every execution
mode, every partition count, any worker count, and adversarial key
distributions (heavy duplicates, skew, multi-column keys, multi-join
fan-out).  GROUP BY results additionally come out in ascending group-key
order in every engine, so the comparisons below do not need to sort.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import BASELINE_MODES, ENGINE_MODES, Database, SQLType
from repro.errors import ReproError
from repro.options import ExecOptions

ALL_MODES = list(ENGINE_MODES) + list(BASELINE_MODES)

_SETTINGS = settings(max_examples=15, deadline=None,
                     suppress_health_check=[HealthCheck.too_slow,
                                            HealthCheck.function_scoped_fixture])

#: Tiny key domains guarantee duplicates; the sampled distribution is
#: deliberately skewed (most rows land on key 0).
_skewed_key = st.sampled_from([0, 0, 0, 0, 0, 1, 1, 2, 3, 4])
_tag = st.sampled_from(["aa", "bb", "cc"])
_row = st.tuples(_skewed_key, _tag, st.integers(-100, 100))


def _breaker_configs(mode):
    configs = [
        ExecOptions(mode=mode),                              # default layout
        ExecOptions(mode=mode, breaker_partitions=1),
        ExecOptions(mode=mode, breaker_partitions=32),
        ExecOptions(mode=mode, use_partitioned_breakers=False),
    ]
    if mode in ENGINE_MODES:
        configs.append(ExecOptions(mode=mode, threads=4))
        configs.append(ExecOptions(mode=mode, threads=4,
                                   breaker_partitions=2))
    return configs


def normalized(rows):
    return [tuple(round(value, 6) if isinstance(value, float) else value
                  for value in row) for row in rows]


def _expected_group_by(rows):
    groups: dict = {}
    for key, tag, value in rows:
        cells = groups.setdefault((key, tag), [0, 0, None, None])
        cells[0] += 1
        cells[1] += value
        cells[2] = value if cells[2] is None else min(cells[2], value)
        cells[3] = value if cells[3] is None else max(cells[3], value)
    result = []
    for (key, tag), (count, total, low, high) in sorted(groups.items()):
        result.append((key, tag, count, total, low, high,
                       round(total / count, 6)))
    return result


@_SETTINGS
@given(rows=st.lists(_row, min_size=0, max_size=120))
def test_partitioned_group_by_matches_single_table(rows):
    db = Database(morsel_size=32, workers=4)
    try:
        db.create_table("t", [("k", SQLType.INT64), ("s", SQLType.STRING),
                              ("v", SQLType.INT64)])
        if rows:
            db.insert("t", rows)
        sql = ("select k, s, count(*), sum(v), min(v), max(v), avg(v) "
               "from t group by k, s")
        expected = _expected_group_by(rows)
        for mode in ALL_MODES:
            for options in _breaker_configs(mode):
                result = db.execute(sql, options=options)
                assert normalized(result.rows) == expected, (mode, options)
    finally:
        db.close()


@_SETTINGS
@given(rows=st.lists(_row, min_size=0, max_size=60),
       dim=st.lists(st.tuples(_skewed_key, st.integers(-10, 10)),
                    min_size=0, max_size=20),
       fact=st.lists(st.tuples(_skewed_key, st.integers(0, 3)),
                     min_size=0, max_size=20))
def test_partitioned_multi_join_group_by_matches_single_table(rows, dim, fact):
    db = Database(morsel_size=16, workers=4)
    try:
        db.create_table("t", [("k", SQLType.INT64), ("s", SQLType.STRING),
                              ("v", SQLType.INT64)])
        db.create_table("d", [("k", SQLType.INT64), ("w", SQLType.INT64)])
        db.create_table("f", [("k", SQLType.INT64), ("g", SQLType.INT64)])
        if rows:
            db.insert("t", rows)
        if dim:
            db.insert("d", dim)
        if fact:
            db.insert("f", fact)
        sql = ("select t.k, f.g, count(*), sum(t.v + d.w) "
               "from t, d, f where t.k = d.k and t.k = f.k "
               "group by t.k, f.g")

        groups: dict = {}
        for key, _, value in rows:
            for dkey, weight in dim:
                if dkey != key:
                    continue
                for fkey, grp in fact:
                    if fkey != key:
                        continue
                    cells = groups.setdefault((key, grp), [0, 0])
                    cells[0] += 1
                    cells[1] += value + weight
        expected = [(key, grp, count, total)
                    for (key, grp), (count, total) in sorted(groups.items())]

        for mode in ALL_MODES:
            for options in _breaker_configs(mode):
                result = db.execute(sql, options=options)
                assert normalized(result.rows) == expected, (mode, options)
    finally:
        db.close()


def test_unordered_group_by_is_deterministic_across_modes():
    """Without ORDER BY, grouped results come out in ascending key order --
    identically in every engine, for every partition count, run after run
    (the old dict-insertion order varied with morsel interleaving)."""
    db = Database(morsel_size=64, workers=4)
    try:
        db.create_table("t", [("k", SQLType.INT64), ("v", SQLType.INT64)])
        db.insert("t", [((i * 7919) % 23, i) for i in range(2000)])
        sql = "select k, count(*), sum(v) from t group by k"
        reference = None
        for mode in ALL_MODES:
            for options in (ExecOptions(mode=mode),
                            ExecOptions(mode=mode, breaker_partitions=16),
                            ExecOptions(mode=mode,
                                        use_partitioned_breakers=False)):
                rows = db.execute(sql, options=options).rows
                assert rows == sorted(rows), (mode, options)
                if reference is None:
                    reference = rows
                assert rows == reference, (mode, options)
    finally:
        db.close()


def test_null_keys_cannot_reach_breakers():
    """The engine rejects NULLs at the storage and binding boundaries, so
    no breaker path (partitioned or not) ever sees a None key; the
    rejection itself must be uniform."""
    db = Database(workers=2)
    try:
        db.create_table("t", [("k", SQLType.INT64), ("v", SQLType.INT64)])
        with pytest.raises(ReproError):
            db.insert("t", [(None, 1)])
        db.insert("t", [(1, 2), (1, 3)])
        with pytest.raises(ReproError):
            db.execute("select k, count(*) from t where k = ? group by k",
                       params=[None])
        result = db.execute("select k, sum(v) from t group by k")
        assert result.rows == [(1, 5)]
    finally:
        db.close()


def test_nan_keys_take_row_fallback_in_batch_kernels():
    """NaN join/group keys route the vectorized batch kernels to the
    row-at-a-time fallback (np.unique would collapse NaNs into one code,
    but NaN keys never compare equal row-at-a-time), so both kernel paths
    stay output-identical on every input."""
    from repro.baselines import VectorizedEngine

    nan = float("nan")
    db = Database()
    try:
        db.create_table("t", [("k", SQLType.FLOAT64), ("v", SQLType.INT64)])
        db.create_table("s", [("k", SQLType.FLOAT64), ("w", SQLType.INT64)])
        db.insert("t", [(nan, 1), (nan, 2), (1.0, 3)], encode=False)
        db.insert("s", [(nan, 10), (2.0, 20), (1.0, 30)], encode=False)
        _, planning, _ = db.prepare("select t.v, s.w from t, s "
                                    "where t.k = s.k")
        batch = VectorizedEngine(db.catalog,
                                 use_batch_kernels=True)
        legacy = VectorizedEngine(db.catalog,
                                  use_batch_kernels=False)
        assert sorted(batch.execute(planning.physical)) == \
            sorted(legacy.execute(planning.physical)) == [(3, 30)]

        db.create_table("g", [("a", SQLType.INT64),
                              ("k", SQLType.FLOAT64)])
        db.insert("g", [(1, nan), (1, nan), (1, 1.0)], encode=False)
        _, planning, _ = db.prepare("select a, k, count(*) from g "
                                    "group by a, k")
        grouped_batch = batch.execute(planning.physical)
        grouped_legacy = legacy.execute(planning.physical)
        assert len(grouped_batch) == len(grouped_legacy) == 3

        # NaN aggregate *arguments* also bypass the reduceat kernel: the
        # row loop keeps Python min/max semantics (first non-NaN winner).
        db.create_table("m", [("k", SQLType.INT64),
                              ("v", SQLType.FLOAT64)])
        db.insert("m", [(1, 1.0), (1, nan), (2, 3.0)], encode=False)
        _, planning, _ = db.prepare("select k, min(v), max(v) from m "
                                    "group by k")
        minmax_batch = batch.execute(planning.physical)
        minmax_legacy = legacy.execute(planning.physical)
        assert minmax_batch == minmax_legacy == [(1, 1.0, 1.0),
                                                 (2, 3.0, 3.0)]
    finally:
        db.close()
