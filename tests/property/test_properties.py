"""Property-based tests (hypothesis) for core invariants.

* SQL expression evaluation agrees between the compiled engine, the bytecode
  interpreter and a plain-Python oracle.
* IR programs produce identical results in the VM, the naive IR interpreter
  and both compiled backends.
* The liveness/register-allocation invariants hold for randomly shaped IR.
* The morsel dispatcher partitions any input exactly.
"""

from __future__ import annotations

import operator

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import Database, SQLType
from repro.adaptive import MorselDispatcher
from repro.backend import compile_optimized, compile_unoptimized
from repro.ir import Constant, ExternFunction, Function, IRBuilder, verify_function
from repro.ir.types import i64, ptr, void
from repro.vm import (
    IRInterpreter,
    VirtualMachine,
    allocate_registers,
    compute_live_ranges,
    translate_function,
)

_SETTINGS = settings(max_examples=40, deadline=None,
                     suppress_health_check=[HealthCheck.too_slow])


# --------------------------------------------------------------------------- #
# SQL filter/aggregate vs Python oracle
# --------------------------------------------------------------------------- #
rows_strategy = st.lists(
    st.tuples(st.integers(min_value=-1000, max_value=1000),
              st.integers(min_value=0, max_value=50),
              st.floats(min_value=-100, max_value=100, allow_nan=False,
                        allow_infinity=False, width=32)),
    min_size=0, max_size=120)


@_SETTINGS
@given(rows=rows_strategy,
       threshold=st.integers(min_value=-500, max_value=500))
def test_sql_aggregate_matches_python_oracle(rows, threshold):
    db = Database(morsel_size=32)
    db.create_table("t", [("a", SQLType.INT64), ("b", SQLType.INT64),
                          ("c", SQLType.FLOAT64)])
    if rows:
        db.insert("t", rows)
    sql = (f"select sum(a) as sa, count(*) as n, sum(c * 2 + b) as sc "
           f"from t where a > {threshold}")
    result = db.execute(sql, mode="bytecode")
    selected = [row for row in rows if row[0] > threshold]
    expected_sum_a = sum(row[0] for row in selected)
    expected_count = len(selected)
    expected_sum_c = sum(row[2] * 2 + row[1] for row in selected)
    got = result.rows[0]
    assert got[0] == expected_sum_a
    assert got[1] == expected_count
    assert got[2] == pytest.approx(expected_sum_c, rel=1e-6, abs=1e-6)


@_SETTINGS
@given(rows=rows_strategy)
def test_group_by_matches_python_oracle(rows):
    db = Database(morsel_size=16)
    db.create_table("t", [("a", SQLType.INT64), ("b", SQLType.INT64),
                          ("c", SQLType.FLOAT64)])
    if rows:
        db.insert("t", rows)
    result = db.execute("select b, count(*) as n, min(a) as mn, max(a) as mx "
                        "from t group by b order by b", mode="bytecode")
    expected: dict[int, list] = {}
    for a, b, _ in rows:
        entry = expected.setdefault(b, [0, None, None])
        entry[0] += 1
        entry[1] = a if entry[1] is None else min(entry[1], a)
        entry[2] = a if entry[2] is None else max(entry[2], a)
    expected_rows = [(b, n, mn, mx)
                     for b, (n, mn, mx) in sorted(expected.items())]
    assert result.rows == expected_rows


@_SETTINGS
@given(rows=rows_strategy,
       low=st.integers(min_value=-200, max_value=0),
       high=st.integers(min_value=1, max_value=200))
def test_modes_agree_on_random_data(rows, low, high):
    db = Database(morsel_size=64)
    db.create_table("t", [("a", SQLType.INT64), ("b", SQLType.INT64),
                          ("c", SQLType.FLOAT64)])
    if rows:
        db.insert("t", rows)
    sql = (f"select b, sum(a) as s from t where a between {low} and {high} "
           f"group by b order by b")
    reference = db.execute(sql, mode="optimized").rows

    def close(left, right):
        if len(left) != len(right):
            return False
        for lrow, rrow in zip(left, right):
            for lval, rval in zip(lrow, rrow):
                if isinstance(lval, float):
                    if abs(lval - rval) > 1e-6:
                        return False
                elif lval != rval:
                    return False
        return True

    assert close(db.execute(sql, mode="bytecode").rows, reference)
    assert close(db.execute(sql, mode="volcano").rows, reference)
    assert close(db.execute(sql, mode="adaptive").rows, reference)


# --------------------------------------------------------------------------- #
# random straight-line IR: all execution tiers agree
# --------------------------------------------------------------------------- #
_OPS = ["add", "sub", "mul", "smin", "smax", "and", "or", "xor"]


def _build_random_program(opcodes: list[tuple[int, int, int]],
                          num_args: int = 3) -> Function:
    """Build a straight-line function from (op_index, lhs_ref, rhs_ref)."""
    function = Function("random_program", [i64] * num_args,
                        [f"a{i}" for i in range(num_args)], i64)
    builder = IRBuilder(function)
    values = list(function.args)
    for op_index, lhs_ref, rhs_ref in opcodes:
        opcode = _OPS[op_index % len(_OPS)]
        lhs = values[lhs_ref % len(values)]
        rhs = values[rhs_ref % len(values)]
        values.append(builder.binary(opcode, lhs, rhs))
    builder.ret(values[-1])
    return function


program_strategy = st.lists(
    st.tuples(st.integers(0, len(_OPS) - 1), st.integers(0, 40),
              st.integers(0, 40)),
    min_size=1, max_size=40)
args_strategy = st.tuples(st.integers(-10**6, 10**6),
                          st.integers(-10**6, 10**6),
                          st.integers(-10**6, 10**6))


@_SETTINGS
@given(program=program_strategy, args=args_strategy)
def test_all_tiers_agree_on_random_ir(program, args):
    function = _build_random_program(program)
    verify_function(function)
    bytecode, _ = translate_function(function)
    vm_result = VirtualMachine().execute(bytecode, list(args))
    ir_result = IRInterpreter().execute(function, list(args))
    unopt_result = compile_unoptimized(function)(*args)
    opt_result = compile_optimized(function)(*args)
    assert vm_result == ir_result == unopt_result == opt_result


@_SETTINGS
@given(program=program_strategy)
def test_register_allocation_invariants(program):
    function = _build_random_program(program)
    ranges, _ = compute_live_ranges(function)
    allocation = allocate_registers(function)
    # 1. every produced value has a slot
    for inst in function.instructions():
        if inst.has_result:
            assert inst.uid in allocation.slot_of
    # 2. overlapping multi-block ranges never share a slot
    by_slot: dict[int, list] = {}
    for uid, live in ranges.items():
        slot = allocation.slot_of.get(uid)
        if slot is not None:
            by_slot.setdefault(slot, []).append(live)
    for slot, shared in by_slot.items():
        for i, a in enumerate(shared):
            for b in shared[i + 1:]:
                if a.single_block and b.single_block \
                        and a.start_block == b.start_block:
                    assert (a.last_use_position < b.def_position
                            or b.last_use_position < a.def_position)
                else:
                    assert not a.overlaps(b)
    # 3. the register file is never larger than one slot per value + pool
    assert allocation.num_registers <= len(allocation.slot_of) + \
        len(allocation.constant_slot_of) + 2


# --------------------------------------------------------------------------- #
# morsel dispatcher partitions exactly
# --------------------------------------------------------------------------- #
@_SETTINGS
@given(total=st.integers(min_value=0, max_value=100_000),
       morsel=st.integers(min_value=1, max_value=5_000),
       initial=st.integers(min_value=1, max_value=5_000))
def test_morsel_dispatcher_partitions_input(total, morsel, initial):
    dispatcher = MorselDispatcher(total, morsel_size=morsel,
                                  initial_size=initial)
    covered = 0
    previous_end = 0
    while True:
        piece = dispatcher.next_morsel()
        if piece is None:
            break
        assert piece.begin == previous_end
        assert piece.size > 0
        covered += piece.size
        previous_end = piece.end
    assert covered == total
