"""Property-based mutation tests for the static verification layer.

Each verifier must reject *every class* of seeded corruption, wherever
hypothesis chooses to plant it:

* the IR verifier over seven structural mutation classes (dropped
  terminators, mid-block terminators, stale parent links, use-before-def,
  call arity, call argument retyping, phi incoming removal),
* the bytecode verifier over six classes (jump targets out of range,
  register indices out of range, reads of never-written registers, writes
  to read-only constant slots, falling off the end of the code array,
  malformed call descriptors),
* the extern-contract checker over six classes (undeclared externs,
  sinks without the threaded state, purity mismatches, declared arity
  outside the contract, impl signature drift, locks in hot-path impls).

The workers being corrupted are themselves randomly shaped: a count loop
over ``begin..end`` with a hypothesis-chosen arithmetic chain feeding a
sink call, i.e. the same skeleton every real pipeline worker has.
"""

from __future__ import annotations

import dataclasses
import threading

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis import check_extern_contracts, verify_bytecode
from repro.errors import BytecodeVerificationError, IRVerificationError
from repro.ir import Constant, ExternFunction, Function, IRBuilder, verify_function
from repro.ir.function import Module
from repro.ir.instructions import CallInst, PhiInst, ReturnInst
from repro.ir.types import i1, i64, ptr, void
from repro.vm import translate_function
from repro.vm.opcodes import OPCODE_SIGNATURES

_SETTINGS = settings(max_examples=30, deadline=None,
                     suppress_health_check=[HealthCheck.too_slow])

_SINK = ExternFunction("rt_emit_row", [ptr, i64], void,
                       lambda ctx, value: None)

_OPS = st.lists(st.tuples(st.sampled_from(["add", "sub", "mul"]),
                          st.integers(min_value=1, max_value=9)),
                min_size=1, max_size=6)


def make_worker(ops):
    """A loop worker with a hypothesis-shaped arithmetic chain."""
    function = Function("worker0", [ptr, i64, i64],
                        ["state", "begin", "end"], void)
    builder = IRBuilder(function)
    index, _, _, close = builder.count_loop(function.args[1],
                                            function.args[2])
    value = index
    for op, literal in ops:
        value = getattr(builder, op)(value, builder.const_i64(literal))
    builder.call(_SINK, [function.args[0], value])
    close()
    builder.ret()
    return function


def pick(candidates, index):
    assert candidates, "mutation has no applicable site in this worker"
    return candidates[index % len(candidates)]


# --------------------------------------------------------------------------- #
# IR verifier mutations
# --------------------------------------------------------------------------- #
def _mutate_drop_terminator(function, index):
    block = pick(function.blocks, index)
    block.instructions.pop()


def _mutate_mid_block_terminator(function, index):
    block = pick([b for b in function.blocks if len(b.instructions) >= 2],
                 index)
    ret = ReturnInst(None)
    ret.block = block
    block.instructions.insert(0, ret)


def _mutate_stale_parent_link(function, index):
    block = pick(function.blocks, index)
    inst = block.instructions[0]
    inst.block = function.blocks[(function.blocks.index(block) + 1)
                                 % len(function.blocks)]


def _mutate_use_before_def(function, index):
    pairs = []
    for block in function.blocks:
        for i, inst in enumerate(block.instructions):
            for j in range(i + 1, len(block.instructions)):
                user = block.instructions[j]
                if inst in user.operands:
                    pairs.append((block, i, j))
    block, i, j = pick(pairs, index)
    block.instructions[i], block.instructions[j] = \
        block.instructions[j], block.instructions[i]


def _calls(function):
    return [inst for inst in function.instructions()
            if isinstance(inst, CallInst)]


def _mutate_call_arity(function, index):
    call = pick(_calls(function), index)
    call.operands.pop()


def _mutate_call_retype(function, index):
    call = pick(_calls(function), index)
    call.operands[-1] = Constant(ptr, None)


def _mutate_phi_drop_incoming(function, index):
    phis = [inst for inst in function.instructions()
            if isinstance(inst, PhiInst) and len(inst.incoming) >= 2]
    phi = pick(phis, index)
    victim = index % len(phi.incoming)
    del phi.incoming[victim]
    del phi.operands[victim]


IR_MUTATIONS = {
    "drop-terminator": _mutate_drop_terminator,
    "mid-block-terminator": _mutate_mid_block_terminator,
    "stale-parent-link": _mutate_stale_parent_link,
    "use-before-def": _mutate_use_before_def,
    "call-arity": _mutate_call_arity,
    "call-retype": _mutate_call_retype,
    "phi-drop-incoming": _mutate_phi_drop_incoming,
}


@_SETTINGS
@given(ops=_OPS, mutation=st.sampled_from(sorted(IR_MUTATIONS)),
       index=st.integers(min_value=0, max_value=63))
def test_ir_verifier_rejects_every_mutation_class(ops, mutation, index):
    function = make_worker(ops)
    verify_function(function)  # pristine worker is clean
    IR_MUTATIONS[mutation](function, index)
    with pytest.raises(IRVerificationError) as info:
        verify_function(function)
    assert info.value.function_name == "worker0"


# --------------------------------------------------------------------------- #
# bytecode verifier mutations
# --------------------------------------------------------------------------- #
def _with_field(code, field_kind, index):
    """Offsets of instructions whose signature has a non-empty field list."""
    offsets = [offset for offset, inst in enumerate(code)
               if getattr(OPCODE_SIGNATURES[inst.op], field_kind)]
    offset = pick(offsets, index)
    fields = getattr(OPCODE_SIGNATURES[code[offset].op], field_kind)
    return offset, fields[index % len(fields)]


def _mutate_jump_out_of_range(bytecode, index):
    code = list(bytecode.code)
    offset, field = _with_field(code, "jumps", index)
    code[offset] = code[offset]._replace(**{field: len(code) + 5})
    return dataclasses.replace(bytecode, code=code)


def _mutate_register_out_of_range(bytecode, index):
    code = list(bytecode.code)
    offset, field = _with_field(code, "reads", index)
    code[offset] = code[offset]._replace(
        **{field: bytecode.num_registers + 2})
    return dataclasses.replace(bytecode, code=code)


def _mutate_read_undefined(bytecode, index):
    grown = dataclasses.replace(bytecode,
                                num_registers=bytecode.num_registers + 1)
    code = list(grown.code)
    offset, field = _with_field(code, "reads", index)
    code[offset] = code[offset]._replace(**{field: grown.num_registers - 1})
    return dataclasses.replace(grown, code=code)


def _mutate_write_reserved_slot(bytecode, index):
    code = list(bytecode.code)
    offset, field = _with_field(code, "writes", index)
    code[offset] = code[offset]._replace(**{field: 0})
    return dataclasses.replace(bytecode, code=code)


def _mutate_fallthrough_off_end(bytecode, index):
    # Rewrite the final instruction into a plain falling-through write, so
    # execution runs off the end of the code array.
    code = list(bytecode.code)
    donor = code[pick([o for o, i in enumerate(code)
                       if OPCODE_SIGNATURES[i.op].writes
                       and not OPCODE_SIGNATURES[i.op].jumps
                       and not OPCODE_SIGNATURES[i.op].call
                       and OPCODE_SIGNATURES[i.op].falls_through], index)]
    code[-1] = donor._replace(a1=bytecode.num_registers - 1)
    return dataclasses.replace(bytecode, code=code)


def _mutate_call_descriptor(bytecode, index):
    code = list(bytecode.code)
    offsets = [offset for offset, inst in enumerate(code)
               if OPCODE_SIGNATURES[inst.op].call]
    offset = pick(offsets, index)
    code[offset] = code[offset]._replace(lit=42)
    return dataclasses.replace(bytecode, code=code)


BC_MUTATIONS = {
    "jump-out-of-range": _mutate_jump_out_of_range,
    "register-out-of-range": _mutate_register_out_of_range,
    "read-undefined": _mutate_read_undefined,
    "write-reserved-slot": _mutate_write_reserved_slot,
    "fallthrough-off-end": _mutate_fallthrough_off_end,
    "call-descriptor": _mutate_call_descriptor,
}


@_SETTINGS
@given(ops=_OPS, mutation=st.sampled_from(sorted(BC_MUTATIONS)),
       index=st.integers(min_value=0, max_value=63))
def test_bytecode_verifier_rejects_every_mutation_class(ops, mutation, index):
    bytecode, _ = translate_function(make_worker(ops))
    verify_bytecode(bytecode)  # pristine translation is clean
    corrupted = BC_MUTATIONS[mutation](bytecode, index)
    with pytest.raises(BytecodeVerificationError) as info:
        verify_bytecode(corrupted)
    assert info.value.function_name == "worker0"


# --------------------------------------------------------------------------- #
# extern-contract mutations
# --------------------------------------------------------------------------- #
def _module_with_call(extern, args_of):
    function = Function("workerX", [ptr, i64, i64],
                        ["state", "begin", "end"], void)
    builder = IRBuilder(function)
    builder.call(extern, args_of(builder, function))
    builder.ret()
    module = Module("test")
    module.add_function(function)
    return module


def _corrupt_undeclared(n):
    extern = ExternFunction(f"rt_mystery_{n}", [i64], i64, lambda x: x,
                            has_side_effects=False)
    return (_module_with_call(extern, lambda b, f: [b.const_i64(n)]),
            "undeclared-extern")


def _corrupt_sink_state(n):
    extern = ExternFunction(f"rt_build_insert_{n}", [ptr, i64], void,
                            lambda ctx, key: None)
    return (_module_with_call(
        extern, lambda b, f: [Constant(ptr, None), b.const_i64(n)]),
        "sink-state")


def _corrupt_purity(n):
    extern = ExternFunction(f"rt_probe_{n}", [i64], ptr,
                            lambda key: None, has_side_effects=True)
    return (_module_with_call(extern, lambda b, f: [b.const_i64(n)]),
            "purity")


def _corrupt_arity(n):
    extern = ExternFunction("rt_match_count", [ptr, i64], i64,
                            lambda matches, extra: 0,
                            has_side_effects=False)
    return (_module_with_call(
        extern, lambda b, f: [Constant(ptr, None), b.const_i64(n)]),
        "arity")


def _corrupt_impl_signature(n):
    extern = ExternFunction(f"rt_like_{n}", [ptr], i1, lambda: True,
                            has_side_effects=False)
    return (_module_with_call(extern, lambda b, f: [Constant(ptr, None)]),
            "impl-signature")


def _corrupt_lock(n):
    shared_lock = threading.Lock()

    def update(ctx, key):
        with shared_lock:
            pass

    extern = ExternFunction(f"rt_build_insert_{n}", [ptr, i64], void, update)
    return (_module_with_call(
        extern, lambda b, f: [f.args[0], b.const_i64(n)]),
        "lock")


EXTERN_MUTATIONS = {
    "undeclared-extern": _corrupt_undeclared,
    "sink-state": _corrupt_sink_state,
    "purity": _corrupt_purity,
    "arity": _corrupt_arity,
    "impl-signature": _corrupt_impl_signature,
    "lock": _corrupt_lock,
}


@_SETTINGS
@given(mutation=st.sampled_from(sorted(EXTERN_MUTATIONS)),
       n=st.integers(min_value=0, max_value=99))
def test_extern_checker_rejects_every_mutation_class(mutation, n):
    module, expected_rule = EXTERN_MUTATIONS[mutation](n)
    rules = {finding.rule for finding in check_extern_contracts(module)}
    assert expected_rule in rules


@_SETTINGS
@given(ops=_OPS)
def test_pristine_workers_pass_every_verifier(ops):
    function = make_worker(ops)
    verify_function(function)
    bytecode, _ = translate_function(function)
    verify_bytecode(bytecode)
    module = Module("test")
    module.add_function(function)
    assert check_extern_contracts(module) == []
