"""Quickstart: create tables, load data, run queries in every execution mode.

Run with:  python examples/quickstart.py
"""

import datetime as dt
import os
import random
import sys

sys.path.insert(0, os.path.join(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))), "src"))

from repro import Database, ExecOptions, SQLType, connect


def main() -> None:
    db = Database()

    # --- schema ---------------------------------------------------------
    db.create_table("customers", [
        ("c_id", SQLType.INT64),
        ("c_name", SQLType.STRING),
        ("c_segment", SQLType.STRING),
        ("c_balance", SQLType.DECIMAL),
    ])
    db.create_table("orders", [
        ("o_id", SQLType.INT64),
        ("o_customer", SQLType.INT64),
        ("o_total", SQLType.DECIMAL),
        ("o_date", SQLType.DATE),
    ])

    # --- data -------------------------------------------------------------
    rng = random.Random(0)
    segments = ["consumer", "corporate", "home office"]
    db.insert("customers", [
        (i, f"customer-{i}", rng.choice(segments),
         round(rng.uniform(-500, 5000), 2))
        for i in range(200)])
    db.insert("orders", [
        (i, rng.randrange(200), round(rng.uniform(10, 900), 2),
         dt.date(1997, 1, 1) + dt.timedelta(days=rng.randrange(720)))
        for i in range(20_000)])

    sql = """
        select c_segment,
               count(*) as num_orders,
               sum(o_total) as revenue,
               avg(o_total) as avg_order
        from orders, customers
        where o_customer = c_id
          and o_date >= date '1997-06-01'
          and c_balance > 0.0
        group by c_segment
        order by revenue desc
    """

    print("query:")
    print(sql)

    # --- one query, every execution strategy -------------------------------
    for mode in ("adaptive", "bytecode", "unoptimized", "optimized",
                 "volcano", "vectorized"):
        result = db.execute(sql, mode=mode)
        timings = result.timings
        print(f"[{mode:>11}] total={timings.total * 1000:7.2f} ms  "
              f"(plan {timings.planning * 1000:5.2f}, "
              f"codegen {timings.codegen * 1000:5.2f}, "
              f"compile {timings.compile * 1000:6.2f}, "
              f"execute {timings.execution * 1000:6.2f})")

    result = db.execute(sql, mode="adaptive")
    print("\nresult rows:")
    for row in result.rows:
        segment, count, revenue, avg_order = row
        print(f"  {segment:12s}  orders={count:5d}  "
              f"revenue={revenue:12.2f}  avg={avg_order:7.2f}")

    # --- prepared queries: plan + compile once, execute many times ---------
    # Database.execute already consults the plan cache transparently (the
    # executions above shared one cached plan); prepare_query exposes the
    # same machinery explicitly.  Re-executions skip parsing, planning and
    # code generation entirely and reuse the compiled tiers, so only the
    # execution phase remains -- the hot path for repeated query traffic.
    prepared = db.prepare_query(sql)
    rerun = prepared.execute(mode="optimized")
    print(f"\nprepared re-execution (optimized): "
          f"plan+codegen {1000 * (rerun.timings.planning + rerun.timings.codegen):.2f} ms, "
          f"compile {rerun.timings.compile * 1000:.2f} ms, "
          f"execute {rerun.timings.execution * 1000:.2f} ms")
    stats = db.plan_cache.stats
    print(f"plan cache: {stats.hits} hits / {stats.lookups} lookups "
          f"({stats.hit_rate:.0%}); an insert into 'orders' or 'customers' "
          f"would invalidate the entry")

    # --- bind parameters: one plan for a whole query shape ------------------
    # Placeholders (? positional, :name named) keep literals out of the
    # generated code, so one compiled artifact serves every binding; plain
    # literal SQL gets the same treatment transparently via
    # auto-parameterization (differing constants collide on one cache
    # entry).
    by_segment = db.prepare_query(
        "select count(*) as n, sum(o_total) as revenue "
        "from orders, customers "
        "where o_customer = c_id and c_segment = :segment "
        "and o_total >= :floor")
    print("\nparameterized prepared query, rebound per segment:")
    for segment in segments:
        result = by_segment.execute(params={"segment": segment,
                                            "floor": 100})
        count, revenue = result.rows[0]
        print(f"  {segment:12s}  orders={count:5d}  revenue={revenue:11.2f}")

    # --- batch bindings + the result cache ---------------------------------
    # execute_many fuses many bindings of one shape into a single pass:
    # the plan is resolved and validated once, every binding is encoded
    # up front, and identical bindings are deduplicated.  Repeated
    # identical reads are served from the semantic result cache
    # (invalidated by catalog versions, so an insert is always visible);
    # ExecOptions(use_result_cache=False) forces real execution.
    batch = db.execute_many(
        "select count(*) as n from orders where o_customer < ?",
        [(25,), (50,), (25,), (100,)])
    print("\nexecute_many over one prepared shape:")
    for (binding,), result in zip([(25,), (50,), (25,), (100,)], batch):
        print(f"  o_customer<{binding:3d}: rows={result.rows[0][0]:5d}  "
              f"cached={result.cached} ({result.cache_source or 'executed'})")
    rc = db.result_cache.stats
    print(f"result cache: {rc.hits} hits / {rc.lookups} lookups, "
          f"{len(db.result_cache)} entries ({rc.bytes} bytes)")

    # --- concurrent submission: tickets, sessions, admission control -------
    # Database.submit enqueues a query and returns immediately; the query
    # runs on the database's shared worker pool (bounded threads, fair
    # round-robin across queries) once admission control lets it through.
    # Sessions carry per-client defaults (one ExecOptions) and statistics.
    # Here every client submits the same parameterized shape with its own
    # constant -- all of them served by a single cached plan, concurrently.
    print("\nconcurrent submission (8 clients on the shared pool):")
    param_sql = ("select count(*) as n, sum(o_total) as revenue "
                 "from orders where o_customer < ?")
    clients = [db.session(options=ExecOptions(mode="adaptive"),
                          name=f"client-{i}")
               for i in range(8)]
    tickets = [client.submit(param_sql, params=((i + 1) * 25,))
               for i, client in enumerate(clients)]
    for client, ticket in zip(clients, tickets):
        result = ticket.result(timeout=60)
        timings = result.timings
        print(f"  {client.name}: rows={result.rows[0][0]:6d}  "
              f"waited {timings.queue * 1000:6.2f} ms, "
              f"ran {timings.total * 1000:6.2f} ms "
              f"(cached={result.cached})")
    sched = db.scheduler.stats
    print(f"scheduler: {sched.completed} completed, "
          f"peak {sched.peak_running} running / "
          f"{sched.peak_pending} queued")

    # --- telemetry: EXPLAIN ANALYZE, metrics snapshot, exporters ------------
    # EXPLAIN ANALYZE runs the statement and annotates every pipeline with
    # observed cardinalities and timings; it works in all execution modes
    # and through every entry point (execute, submit, sessions).
    print("\nEXPLAIN ANALYZE:")
    analyzed = db.execute(f"explain analyze {sql}", mode="adaptive")
    for (line,) in analyzed.rows:
        print(f"  {line}")

    # Every engine-mode result carries a unified lifecycle trace: phase and
    # pipeline spans, plus adaptive tier switches with the cost-model
    # trigger that caused them (telemetry="off" disables recording).
    trace = analyzed.query_trace
    print(f"\nquery {trace.query_id}: {len(trace.spans)} spans, "
          f"{len(trace.tier_switches)} tier switches")

    # Database.metrics aggregates engine-wide counters -- queries by mode,
    # latency histograms, plan-cache hit rate, scheduler queue depth,
    # storage pruning -- as a nested dict, JSON lines, or Prometheus text.
    snapshot = db.metrics.snapshot()
    print(f"metrics: {snapshot['query']['count']} queries recorded, "
          f"cache hit rate {snapshot['plan_cache']['hit_rate']:.0%}, "
          f"p95 latency {snapshot['query']['seconds']['p95'] * 1000:.2f} ms")
    prometheus = db.metrics.to_prometheus()
    print(f"prometheus export: {len(prometheus.splitlines())} lines "
          f"(first: {prometheus.splitlines()[0]!r})")

    # --- network serving: TCP server + blocking client ---------------------
    # Database.serve() starts an asyncio TCP server over the scheduler
    # (port=0 binds an ephemeral port); repro.connect() is the matching
    # client library.  Prepared statements live server-side per connection
    # but share the engine's plan cache across all of them; admission
    # control surfaces to clients as BUSY protocol errors instead of
    # unbounded queueing, and results stream back in bounded row batches.
    print("\nnetwork serving:")
    server = db.serve()
    conn = connect(*server.address, session_name="quickstart")
    stmt = conn.prepare("select count(*) as n, sum(o_total) as revenue "
                        "from orders where o_customer < :c")
    print(f"  prepared statement {stmt.statement_id}: "
          f"params={[(n, t.value) for n, t in stmt.parameters]}")
    for c in (50, 150):
        wired = stmt.execute(params={"c": c}, timeout=60)
        print(f"  c<{c}: rows={wired.rows[0][0]:6d}  mode={wired.mode}  "
              f"cached={wired.cached}")
    adhoc = conn.execute("select max(o_total) as m from orders",
                         mode="volcano", timeout=60)
    print(f"  ad-hoc over the wire (volcano): {adhoc.rows[0][0]:.2f}")
    print(f"  server metrics: "
          f"{db.metrics.get('server.requests_total.execute').value} "
          f"executes, "
          f"{db.metrics.get('server.bytes_sent').value} bytes sent")
    conn.close()
    db.close()  # drains the server, then joins the pool + compile thread


if __name__ == "__main__":
    main()
