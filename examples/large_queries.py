"""Machine-generated queries: why the linear-time bytecode translation matters.

Business-intelligence tools emit queries with thousands of expressions
(paper Section V-E).  This example generates progressively wider aggregate
queries, compares how long each execution tier takes to *prepare* them, and
shows that adaptive execution keeps the end-to-end latency flat because it
only compiles when the data size justifies it.

Run with:  python examples/large_queries.py
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))), "src"))

from repro.workloads import populate_wide_table, wide_aggregate_query


def main() -> None:
    db = populate_wide_table(num_rows=2_000)

    print(f"{'aggregates':>10} {'IR insts':>9} | "
          f"{'bytecode prep':>13} {'unopt prep':>11} {'opt prep':>9} | "
          f"{'adaptive total':>14}")
    for num_aggregates in (10, 50, 150, 400):
        sql = wide_aggregate_query(num_aggregates)

        # use_cache=False: the point of this table is the *cold* preparation
        # cost per tier; a plan-cache hit would report 0 for those phases.
        bytecode = db.execute(sql, mode="bytecode", use_cache=False)
        unoptimized = db.execute(sql, mode="unoptimized", use_cache=False)
        optimized = db.execute(sql, mode="optimized", use_cache=False)
        adaptive = db.execute(sql, mode="adaptive", use_cache=False)

        print(f"{num_aggregates:>10} {bytecode.ir_instructions:>9} | "
              f"{bytecode.timings.compile * 1000:>11.1f} ms "
              f"{unoptimized.timings.compile * 1000:>8.1f} ms "
              f"{optimized.timings.compile * 1000:>6.1f} ms | "
              f"{adaptive.timings.total * 1000:>11.1f} ms")

    print("\nPreparation cost grows much faster for the compiling tiers; the "
          "bytecode translation stays linear,\nwhich is what lets the "
          "adaptive engine accept arbitrarily large generated queries "
          "(paper Fig. 15).")


if __name__ == "__main__":
    main()
