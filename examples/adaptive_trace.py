"""Adaptive execution in action: per-pipeline mode switches and the Fig. 14
style execution trace.

The script loads a scaled TPC-H instance, runs query 11 adaptively, prints
which execution mode every pipeline ended up using (small pipelines stay in
the bytecode interpreter, expensive pipelines get compiled), and then renders
the virtual-time multi-threaded trace the paper's Fig. 14 shows.

Run with:  python examples/adaptive_trace.py
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))), "src"))

from repro.adaptive import render_trace, simulate_adaptive, simulate_static
from repro.adaptive.simulation import cost_model_from_profiles, profile_query
from repro.workloads import TPCH_QUERIES, populate_tpch


def main() -> None:
    print("loading scaled TPC-H data ...")
    db = populate_tpch(scale_factor=0.2)
    sql = TPCH_QUERIES[11]

    # --- real adaptive execution ------------------------------------------
    result = db.execute(sql, mode="adaptive", collect_trace=True)
    print(f"\nadaptive execution of TPC-H Q11 "
          f"({result.timings.total * 1000:.1f} ms total):")
    for pipeline in result.pipelines:
        modes = " -> ".join(pipeline.mode_history)
        print(f"  {pipeline.name:<22} rows={pipeline.rows:7d} "
              f"morsels={pipeline.morsels:4d} modes: {modes}")

    # --- Fig. 14 style virtual-time trace with 4 worker threads ------------
    print("\nprofiling the query for the 4-thread trace ...")
    profile = profile_query(db, sql, label="TPC-H Q11")
    cost_model = cost_model_from_profiles([profile])

    for label, run in (
            ("bytecode", simulate_static(profile, "bytecode", 4,
                                         morsel_size=64)),
            ("unoptimized", simulate_static(profile, "unoptimized", 4,
                                            morsel_size=64)),
            ("adaptive", simulate_adaptive(profile, 4, cost_model=cost_model,
                                           morsel_size=64,
                                           initial_morsel_size=16))):
        print()
        print(render_trace(run.trace, width=90))
        print(f"{label}: total {run.total_seconds * 1000:.2f} ms "
              f"(compilation {run.compile_seconds * 1000:.2f} ms)")


if __name__ == "__main__":
    main()
